// hypart — the computational structure Q = (V, D) of a nested loop (Def. 2).
//
// V is the index set J^n, D the set of constant dependence vectors.  There
// is an arc v_i -> v_j whenever v_j - v_i in D (v_j depends on v_i).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "graph/digraph.hpp"
#include "loop/dependence.hpp"
#include "loop/index_set.hpp"
#include "loop/loop_nest.hpp"
#include "numeric/int_linalg.hpp"

namespace hypart {

/// Hash for integer index points so structures can key on them.  Each
/// coordinate is passed through a full splitmix64 finalizer before mixing:
/// the previous xor-shift combiner left small-stride grid points clustered
/// in a few buckets (identical low bits), degrading the dense point maps to
/// linked-list scans.
struct IntVecHash {
  static constexpr std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
  std::size_t operator()(const IntVec& v) const noexcept {
    std::uint64_t h = mix(static_cast<std::uint64_t>(v.size()));
    for (std::int64_t x : v) h = mix(h ^ static_cast<std::uint64_t>(x));
    return static_cast<std::size_t>(h);
  }
};

using PointIndexMap = std::unordered_map<IntVec, std::size_t, IntVecHash>;

class ComputationStructure {
 public:
  /// Build from a nest, analyzing dependences automatically.
  static ComputationStructure from_loop(const LoopNest& nest, const DependenceOptions& opts = {});

  /// Build from explicit vertex set and dependence vectors.
  ComputationStructure(std::vector<IntVec> vertices, std::vector<IntVec> dependences);

  [[nodiscard]] std::size_t dimension() const { return dim_; }
  [[nodiscard]] const std::vector<IntVec>& vertices() const { return vertices_; }
  [[nodiscard]] const std::vector<IntVec>& dependences() const { return dependences_; }
  [[nodiscard]] const PointIndexMap& vertex_index() const { return index_; }

  [[nodiscard]] bool contains(const IntVec& p) const { return index_.contains(p); }
  /// Vertex id of point p; throws if absent.
  [[nodiscard]] std::size_t id_of(const IntVec& p) const;

  /// Total number of dependence arcs (pairs (j, j+d) with both ends in V).
  /// For L1 on a 4x4 domain this is the paper's count of 33.
  [[nodiscard]] std::size_t dependence_arc_count() const;

  /// Visit every arc (source point, sink point, dependence-vector index).
  void for_each_arc(
      const std::function<void(const IntVec&, const IntVec&, std::size_t)>& visit) const;

  /// Materialize as an explicit digraph (vertex ids match vertices()).
  [[nodiscard]] Digraph to_digraph() const;

  /// A computational structure of a nested loop must be acyclic; verified
  /// via the explicit digraph (cheap for the sizes used in tests/benches).
  [[nodiscard]] bool is_acyclic() const;

 private:
  std::size_t dim_ = 0;
  std::vector<IntVec> vertices_;
  std::vector<IntVec> dependences_;
  PointIndexMap index_;
};

}  // namespace hypart
