#include "graph/digraph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace hypart {

std::size_t Digraph::add_vertex() {
  out_.emplace_back();
  in_.emplace_back();
  return out_.size() - 1;
}

void Digraph::add_edge(std::size_t u, std::size_t v, std::int64_t weight) {
  if (u >= out_.size() || v >= out_.size()) throw std::out_of_range("Digraph::add_edge");
  for (Edge& e : out_[u]) {
    if (e.to == v) {
      e.weight += weight;
      for (Edge& r : in_[v])
        if (r.to == u) {
          r.weight += weight;
          break;
        }
      return;
    }
  }
  out_[u].push_back({v, weight});
  in_[v].push_back({u, weight});
  ++edges_;
}

bool Digraph::has_edge(std::size_t u, std::size_t v) const {
  return std::any_of(out_[u].begin(), out_[u].end(), [v](const Edge& e) { return e.to == v; });
}

std::int64_t Digraph::edge_weight(std::size_t u, std::size_t v) const {
  for (const Edge& e : out_[u])
    if (e.to == v) return e.weight;
  return 0;
}

std::int64_t Digraph::total_weight() const {
  std::int64_t w = 0;
  for (const auto& adj : out_)
    for (const Edge& e : adj) w += e.weight;
  return w;
}

std::vector<std::size_t> Digraph::topological_order() const {
  std::vector<std::size_t> indeg(vertex_count());
  for (std::size_t v = 0; v < vertex_count(); ++v) indeg[v] = in_[v].size();
  std::deque<std::size_t> ready;
  for (std::size_t v = 0; v < vertex_count(); ++v)
    if (indeg[v] == 0) ready.push_back(v);
  std::vector<std::size_t> order;
  order.reserve(vertex_count());
  while (!ready.empty()) {
    std::size_t u = ready.front();
    ready.pop_front();
    order.push_back(u);
    for (const Edge& e : out_[u])
      if (--indeg[e.to] == 0) ready.push_back(e.to);
  }
  if (order.size() != vertex_count()) return {};
  return order;
}

bool Digraph::is_acyclic() const {
  return vertex_count() == 0 || !topological_order().empty();
}

std::vector<std::size_t> Digraph::reachable_from(std::size_t start) const {
  std::vector<bool> seen(vertex_count(), false);
  std::vector<std::size_t> stack{start};
  std::vector<std::size_t> result;
  seen[start] = true;
  while (!stack.empty()) {
    std::size_t u = stack.back();
    stack.pop_back();
    result.push_back(u);
    for (const Edge& e : out_[u])
      if (!seen[e.to]) {
        seen[e.to] = true;
        stack.push_back(e.to);
      }
  }
  return result;
}

std::vector<std::size_t> Digraph::weak_components() const {
  std::vector<std::size_t> comp(vertex_count(), SIZE_MAX);
  std::size_t next = 0;
  for (std::size_t s = 0; s < vertex_count(); ++s) {
    if (comp[s] != SIZE_MAX) continue;
    std::vector<std::size_t> stack{s};
    comp[s] = next;
    while (!stack.empty()) {
      std::size_t u = stack.back();
      stack.pop_back();
      for (const Edge& e : out_[u])
        if (comp[e.to] == SIZE_MAX) {
          comp[e.to] = next;
          stack.push_back(e.to);
        }
      for (const Edge& e : in_[u])
        if (comp[e.to] == SIZE_MAX) {
          comp[e.to] = next;
          stack.push_back(e.to);
        }
    }
    ++next;
  }
  return comp;
}

std::size_t Digraph::dag_longest_path() const {
  std::vector<std::size_t> order = topological_order();
  if (order.empty() && vertex_count() > 0)
    throw std::logic_error("Digraph::dag_longest_path: graph is cyclic");
  std::vector<std::size_t> dist(vertex_count(), 0);
  std::size_t best = 0;
  for (std::size_t u : order)
    for (const Edge& e : out_edges(u)) {
      dist[e.to] = std::max(dist[e.to], dist[u] + 1);
      best = std::max(best, dist[e.to]);
    }
  return best;
}

}  // namespace hypart
