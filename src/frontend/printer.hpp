// hypart — unparser: LoopNest back to the textual loop language.
//
// The inverse of frontend/parser.hpp for executable nests;
// parse(unparse(nest)) reproduces the nest's dependences and semantics,
// which the round-trip tests assert for every workload.
#pragma once

#include <string>

#include "loop/loop_nest.hpp"

namespace hypart {

/// Emit DSL source for an executable nest (every statement built with
/// LoopNestBuilder::assign); throws std::invalid_argument otherwise.
std::string unparse_loop_nest(const LoopNest& nest);

}  // namespace hypart
