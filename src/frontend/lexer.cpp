#include "frontend/lexer.hpp"

#include <cctype>

namespace hypart {

std::string to_string(TokenKind k) {
  switch (k) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::Integer: return "integer";
    case TokenKind::Float: return "float";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::Assign: return "'='";
    case TokenKind::Colon: return "':'";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Comma: return "','";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::End: return "end of input";
  }
  return "?";
}

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t line = 1, column = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto peek = [&](std::size_t ahead = 0) -> char {
    return i + ahead < n ? source[i + ahead] : '\0';
  };
  auto advance = [&]() {
    if (source[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    ++i;
  };
  auto make = [&](TokenKind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = column;
    return t;
  };

  while (i < n) {
    char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '#' || (c == '/' && peek(1) == '/')) {
      while (i < n && peek() != '\n') advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Token t = make(TokenKind::Identifier, "");
      std::string text;
      while (i < n && (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
        text += peek();
        advance();
      }
      t.text = std::move(text);
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Token t = make(TokenKind::Integer, "");
      std::string text;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '.')) {
        if (peek() == '.') {
          if (is_float) throw ParseError("malformed number '" + text + ".'", line, column);
          is_float = true;
        }
        text += peek();
        advance();
      }
      // Optional exponent (scientific notation): e.g. 2.5e-3, 1e6.
      if (i < n && (peek() == 'e' || peek() == 'E')) {
        std::size_t digits_at = (peek(1) == '+' || peek(1) == '-') ? 2 : 1;
        if (i + digits_at < n && std::isdigit(static_cast<unsigned char>(peek(digits_at)))) {
          is_float = true;
          text += peek();
          advance();
          if (peek() == '+' || peek() == '-') {
            text += peek();
            advance();
          }
          while (i < n && std::isdigit(static_cast<unsigned char>(peek()))) {
            text += peek();
            advance();
          }
        }
      }
      t.text = text;
      if (is_float) {
        t.kind = TokenKind::Float;
        try {
          t.float_value = std::stod(text);
        } catch (const std::out_of_range&) {
          throw ParseError("float literal out of range: " + text, t.line, t.column);
        }
      } else {
        try {
          t.int_value = std::stoll(text);
        } catch (const std::out_of_range&) {
          throw ParseError("integer literal out of range: " + text, t.line, t.column);
        }
      }
      tokens.push_back(std::move(t));
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '{': kind = TokenKind::LBrace; break;
      case '}': kind = TokenKind::RBrace; break;
      case '[': kind = TokenKind::LBracket; break;
      case ']': kind = TokenKind::RBracket; break;
      case '(': kind = TokenKind::LParen; break;
      case ')': kind = TokenKind::RParen; break;
      case '=': kind = TokenKind::Assign; break;
      case ':': kind = TokenKind::Colon; break;
      case ';': kind = TokenKind::Semicolon; break;
      case ',': kind = TokenKind::Comma; break;
      case '+': kind = TokenKind::Plus; break;
      case '-': kind = TokenKind::Minus; break;
      case '*': kind = TokenKind::Star; break;
      case '/': kind = TokenKind::Slash; break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", line, column);
    }
    Token t = make(kind, std::string(1, c));
    advance();
    tokens.push_back(std::move(t));
  }
  tokens.push_back(make(TokenKind::End, ""));
  return tokens;
}

}  // namespace hypart
