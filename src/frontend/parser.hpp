// hypart — recursive-descent parser for the loop-nest language.
//
// Grammar (see frontend/lexer.hpp for the surface syntax):
//
//   program    := "loop" IDENT "{" for+ statement+ "}"
//   for        := "for" IDENT "=" affine "to" affine
//   statement  := [IDENT ":"] arrayref "=" expr ";"
//   arrayref   := IDENT "[" affine ("," affine)* "]"
//   expr       := term  (("+" | "-") term)*
//   term       := unary (("*" | "/") unary)*
//   unary      := "-" unary | primary
//   primary    := NUMBER | arrayref | "(" expr ")"
//               | ("min" | "max") "(" expr "," expr ")"
//   affine     := aterm (("+" | "-") aterm)*
//   aterm      := INT ["*" INDEX] | INDEX | "-" aterm
//
// Loop bounds may reference outer loop indices (triangular domains);
// statement right-hand sides become executable Expr trees, so parsed loops
// run directly through the interpreters and the whole pipeline.
#pragma once

#include <string>

#include "loop/loop_nest.hpp"

namespace hypart {

/// Parse one `loop ... { ... }` program into a LoopNest.
/// Throws ParseError (frontend/lexer.hpp) with source positions.
LoopNest parse_loop_nest(const std::string& source);

}  // namespace hypart
