// hypart — lexer for the textual loop-nest language.
//
// The frontend accepts loops written essentially as the paper prints them:
//
//   loop L1 {
//     for i = 0 to 3
//     for j = 0 to 3
//     S1: A[i+1, j+1] = A[i+1, j] + B[i, j];
//     S2: B[i+1, j]   = A[i, j] * 2 + 3;
//   }
//
// This file tokenizes; frontend/parser.hpp builds the LoopNest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace hypart {

/// Parse failure with 1-based source position.  Part of the typed error
/// hierarchy (ErrorKind::Parse, CLI exit code 65).
class ParseError : public Error {
 public:
  ParseError(const std::string& message, std::size_t line, std::size_t column)
      : Error(ErrorKind::Parse, "parse error at " + std::to_string(line) + ":" +
                                    std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

enum class TokenKind {
  Identifier,  // foo, i, A  (keywords are classified by the parser)
  Integer,     // 42
  Float,       // 2.5
  LBrace,      // {
  RBrace,      // }
  LBracket,    // [
  RBracket,    // ]
  LParen,      // (
  RParen,      // )
  Assign,      // =
  Colon,       // :
  Semicolon,   // ;
  Comma,       // ,
  Plus,        // +
  Minus,       // -
  Star,        // *
  Slash,       // /
  End,         // end of input
};

std::string to_string(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;
  std::int64_t int_value = 0;
  double float_value = 0.0;
  std::size_t line = 1;
  std::size_t column = 1;
};

/// Tokenize the whole input.  Comments run from '#' or '//' to end of line.
/// Throws ParseError on unexpected characters or malformed numbers.
std::vector<Token> tokenize(const std::string& source);

}  // namespace hypart
