#include "frontend/printer.hpp"

#include <sstream>
#include <stdexcept>

#include "loop/expr.hpp"

namespace hypart {

std::string unparse_loop_nest(const LoopNest& nest) {
  const std::vector<std::string> names = nest.index_names();
  std::ostringstream os;
  // The parser requires identifiers; sanitize the nest name conservatively.
  std::string name;
  for (char c : nest.name())
    name += (std::isalnum(static_cast<unsigned char>(c)) || c == '_') ? c : '_';
  if (name.empty() || std::isdigit(static_cast<unsigned char>(name.front()))) name = "l_" + name;

  os << "loop " << name << " {\n";
  for (const LoopDim& d : nest.dims())
    os << "  for " << d.name << " = " << d.lower.to_string(names, true) << " to "
       << d.upper.to_string(names, false) << "\n";
  for (const Statement& s : nest.statements()) {
    if (!s.is_executable())
      throw std::invalid_argument("unparse_loop_nest: statement '" + s.label +
                                  "' has no executable right-hand side");
    const ArrayAccess& w = s.accesses.front();
    os << "  " << s.label << ": " << w.array << "[";
    for (std::size_t i = 0; i < w.subscripts.size(); ++i)
      os << (i ? ", " : "") << w.subscripts[i].to_string(names);
    os << "] = " << s.rhs->to_string(names) << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace hypart
