#include "frontend/parser.hpp"

#include <algorithm>
#include <unordered_map>

#include "frontend/lexer.hpp"
#include "loop/expr.hpp"

namespace hypart {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& source) : tokens_(tokenize(source)) {}

  LoopNest parse() {
    expect_keyword("loop");
    std::string name = expect(TokenKind::Identifier).text;
    expect(TokenKind::LBrace);

    LoopNestBuilder builder(std::move(name));
    // for-headers
    while (is_keyword("for")) {
      advance();
      Token index = expect(TokenKind::Identifier);
      if (index_of_.contains(index.text))
        throw ParseError("duplicate loop index '" + index.text + "'", index.line, index.column);
      // Bounds may use outer indices only; parse them before registering
      // the new index so it cannot appear in its own bounds.
      expect(TokenKind::Assign);
      BoundExpr lower = parse_bound(/*is_lower=*/true);
      expect_keyword("to");
      BoundExpr upper = parse_bound(/*is_lower=*/false);
      index_of_.emplace(index.text, index_of_.size());
      builder.loop(index.text, std::move(lower), std::move(upper));
    }
    if (index_of_.empty())
      throw ParseError("expected at least one 'for' header", cur().line, cur().column);

    // statements
    std::size_t auto_label = 1;
    bool any_statement = false;
    while (!at(TokenKind::RBrace)) {
      any_statement = true;
      std::string label;
      if (at(TokenKind::Identifier) && peek_kind(1) == TokenKind::Colon) {
        label = advance().text;
        advance();  // ':'
      } else {
        label = "S" + std::to_string(auto_label);
      }
      ++auto_label;

      Token array = expect(TokenKind::Identifier);
      expect(TokenKind::LBracket);
      std::vector<AffineExpr> subscripts = parse_subscripts();
      expect(TokenKind::Assign);
      ExprPtr value = parse_expr();
      expect(TokenKind::Semicolon);
      builder.assign(std::move(label), array.text, std::move(subscripts), std::move(value));
    }
    if (!any_statement)
      throw ParseError("expected at least one statement", cur().line, cur().column);
    expect(TokenKind::RBrace);
    expect(TokenKind::End);
    return builder.build();
  }

 private:
  // ---- token plumbing -------------------------------------------------------
  [[nodiscard]] const Token& cur() const { return tokens_[pos_]; }
  [[nodiscard]] TokenKind peek_kind(std::size_t ahead) const {
    std::size_t p = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[p].kind;
  }
  [[nodiscard]] bool at(TokenKind k) const { return cur().kind == k; }
  [[nodiscard]] bool is_keyword(const std::string& kw) const {
    return at(TokenKind::Identifier) && cur().text == kw;
  }
  Token advance() { return tokens_[pos_++]; }
  Token expect(TokenKind k) {
    if (!at(k))
      throw ParseError("expected " + to_string(k) + ", found " + describe(cur()), cur().line,
                       cur().column);
    return advance();
  }
  void expect_keyword(const std::string& kw) {
    if (!is_keyword(kw))
      throw ParseError("expected '" + kw + "', found " + describe(cur()), cur().line,
                       cur().column);
    advance();
  }
  static std::string describe(const Token& t) {
    if (t.kind == TokenKind::Identifier || t.kind == TokenKind::Integer ||
        t.kind == TokenKind::Float)
      return "'" + t.text + "'";
    return to_string(t.kind);
  }

  // ---- affine expressions ---------------------------------------------------
  // A loop bound is a single affine expression or a disjunctive
  // `max(e1, e2, ...)` (lower) / `min(e1, e2, ...)` (upper).  The polarity
  // is enforced so the convexity argument holds: max-of-lower and
  // min-of-upper are conjunctions of half-spaces; the opposite pairing
  // would make the domain non-convex.
  BoundExpr parse_bound(bool is_lower) {
    if ((is_keyword("min") || is_keyword("max")) && peek_kind(1) == TokenKind::LParen) {
      bool is_min = cur().text == "min";
      if (is_min == is_lower)
        throw ParseError(is_lower ? "lower bound must use max(...), not min(...)"
                                  : "upper bound must use min(...), not max(...)",
                         cur().line, cur().column);
      advance();
      expect(TokenKind::LParen);
      std::vector<AffineExpr> terms;
      terms.push_back(parse_affine());
      while (at(TokenKind::Comma)) {
        advance();
        terms.push_back(parse_affine());
      }
      expect(TokenKind::RParen);
      if (terms.size() < 2)
        throw ParseError("min/max bound needs at least two expressions", cur().line,
                         cur().column);
      return BoundExpr(std::move(terms));
    }
    return parse_affine();
  }

  AffineExpr parse_affine() {
    AffineExpr e = parse_affine_term();
    while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
      bool minus = advance().kind == TokenKind::Minus;
      AffineExpr t = parse_affine_term();
      e = minus ? std::move(e) - t : std::move(e) + t;
    }
    return e;
  }

  AffineExpr parse_affine_term() {
    if (at(TokenKind::Minus)) {
      advance();
      return -1 * parse_affine_term();
    }
    if (at(TokenKind::Integer)) {
      std::int64_t c = advance().int_value;
      if (at(TokenKind::Star)) {
        advance();
        Token id = expect(TokenKind::Identifier);
        return AffineExpr::index(index_level(id), c);
      }
      return AffineExpr(c);
    }
    if (at(TokenKind::Identifier)) {
      Token id = advance();
      return AffineExpr::index(index_level(id));
    }
    throw ParseError("expected affine term, found " + describe(cur()), cur().line, cur().column);
  }

  std::size_t index_level(const Token& id) {
    auto it = index_of_.find(id.text);
    if (it == index_of_.end())
      throw ParseError("'" + id.text + "' is not a loop index", id.line, id.column);
    return it->second;
  }

  std::vector<AffineExpr> parse_subscripts() {
    std::vector<AffineExpr> subs;
    subs.push_back(parse_affine());
    while (at(TokenKind::Comma)) {
      advance();
      subs.push_back(parse_affine());
    }
    expect(TokenKind::RBracket);
    return subs;
  }

  // ---- value expressions ----------------------------------------------------
  // Expression recursion is depth-limited so adversarial inputs (thousands
  // of nested parens / unary minuses) yield a ParseError instead of
  // exhausting the call stack.
  static constexpr std::size_t kMaxExprDepth = 200;

  struct DepthGuard {
    Parser& p;
    explicit DepthGuard(Parser& parser) : p(parser) {
      if (++p.expr_depth_ > kMaxExprDepth)
        throw ParseError("expression nested deeper than " + std::to_string(kMaxExprDepth) +
                             " levels",
                         p.cur().line, p.cur().column);
    }
    ~DepthGuard() { --p.expr_depth_; }
  };

  ExprPtr parse_expr() {
    DepthGuard guard(*this);
    ExprPtr e = parse_term();
    while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
      bool minus = advance().kind == TokenKind::Minus;
      ExprPtr t = parse_term();
      e = minus ? std::move(e) - std::move(t) : std::move(e) + std::move(t);
    }
    return e;
  }

  ExprPtr parse_term() {
    ExprPtr e = parse_unary();
    while (at(TokenKind::Star) || at(TokenKind::Slash)) {
      bool div = advance().kind == TokenKind::Slash;
      ExprPtr t = parse_unary();
      e = div ? std::move(e) / std::move(t) : std::move(e) * std::move(t);
    }
    return e;
  }

  ExprPtr parse_unary() {
    DepthGuard guard(*this);
    if (at(TokenKind::Minus)) {
      advance();
      return -parse_unary();
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    if (at(TokenKind::Integer)) return constant(static_cast<double>(advance().int_value));
    if (at(TokenKind::Float)) return constant(advance().float_value);
    if (at(TokenKind::LParen)) {
      advance();
      ExprPtr e = parse_expr();
      expect(TokenKind::RParen);
      return e;
    }
    if (is_keyword("min") || is_keyword("max")) {
      bool is_min = cur().text == "min";
      advance();
      expect(TokenKind::LParen);
      ExprPtr a = parse_expr();
      expect(TokenKind::Comma);
      ExprPtr b = parse_expr();
      expect(TokenKind::RParen);
      return is_min ? emin(std::move(a), std::move(b)) : emax(std::move(a), std::move(b));
    }
    if (at(TokenKind::Identifier)) {
      Token id = advance();
      if (!at(TokenKind::LBracket)) {
        if (index_of_.contains(id.text))
          throw ParseError("loop index '" + id.text +
                               "' cannot appear outside array subscripts",
                           id.line, id.column);
        throw ParseError("expected '[' after array name '" + id.text + "'", id.line, id.column);
      }
      advance();
      std::vector<AffineExpr> subs = parse_subscripts();
      return ref(id.text, std::move(subs));
    }
    throw ParseError("expected expression, found " + describe(cur()), cur().line, cur().column);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::size_t expr_depth_ = 0;
  std::unordered_map<std::string, std::size_t> index_of_;
};

}  // namespace

LoopNest parse_loop_nest(const std::string& source) { return Parser(source).parse(); }

}  // namespace hypart
