// hypart::fault — routing on a degraded hypercube.
//
// E-cube routing corrects differing address bits lowest-dimension-first;
// on a damaged cube some of those links (or intermediate nodes) are gone.
// route_with_faults keeps the e-cube path whenever it survives and
// otherwise falls back to a deterministic dimension-ordered breadth-first
// search over the live subgraph (neighbors enumerated dimension 0..n-1,
// first-found parent wins), so the detour and its re-charged hop count are
// identical on every run.  Endpoints are exempt from the node-liveness
// test: the caller decides what sending from / to a failed node means
// (the simulator remaps such traffic away before routing).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "topology/topology.hpp"

namespace hypart::fault {

struct Route {
  std::vector<ProcId> hops;  ///< intermediate + final nodes, as ecube_route
  bool rerouted = false;     ///< true when the plain e-cube path was unusable
};

/// Route a message src -> dst at simulated step `step` around the failures
/// in `faults`.  Returns the surviving e-cube path unchanged when intact.
/// Throws FaultError when no live path exists (the cube is disconnected
/// for this pair at this step).
Route route_with_faults(const Hypercube& cube, ProcId src, ProcId dst, const FaultSet& faults,
                        std::int64_t step);

/// Hop distance of the degraded route (equals cube.distance(src, dst) when
/// the e-cube path survives).
std::int64_t degraded_distance(const Hypercube& cube, ProcId src, ProcId dst,
                               const FaultSet& faults, std::int64_t step);

}  // namespace hypart::fault
