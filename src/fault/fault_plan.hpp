// hypart::fault — deterministic fault injection for the simulated machine.
//
// The paper's evaluation assumes a perfect hypercube; a FaultPlan breaks
// that assumption on purpose.  A plan marks nodes and links as failed,
// either from the start or beginning at a given simulated hyperplane step,
// and may additionally carry a *seeded* sampler that draws extra node/link
// failures from a fixed PRNG — never from wall-clock or global randomness,
// so every run of the same plan degrades the machine identically.
//
// A plan is machine-independent (a sampler cannot know the cube size at
// parse time); resolve() materializes it against a concrete Hypercube into
// a FaultSet, the step-aware query object the simulator, router and
// remapper consume.
//
// Spec grammar (CLI `--faults`, comma-separated terms):
//   node:<id>             node <id> failed from the start
//   node:<id>@<step>      node <id> fails at hyperplane step <step>
//   link:<a>-<b>          link {a,b} failed from the start
//   link:<a>-<b>@<step>   link {a,b} fails at step <step>
//   rand:<seed>:<k>n      sample <k> distinct extra node failures
//   rand:<seed>:<k>l      sample <k> distinct extra link failures
//   rand:<seed>:<k>n<m>l  both, from one PRNG stream
// e.g.  --faults node:5,link:2-6@4,rand:42:2n1l
//
// Process-backend faults (`proc:` terms) target the *real* multi-process
// runtime (exec/proc_runtime.hpp): they make an OS worker process actually
// crash, hang, corrupt a frame, or delay its sends, deterministically at a
// given hyperplane step, so every supervisor recovery path is testable:
//   proc:kill:<id>[@<step>]        worker <id> raises SIGKILL at step
//   proc:hang:<id>[@<step>]        worker <id> stops heartbeating/working
//   proc:trunc:<id>[@<step>]       worker <id> writes a truncated frame, dies
//   proc:delay:<id>:<ms>[@<step>]  worker <id> delays its sends by <ms> ms
//   proc:rand:<seed>               seeded kill of a sampled worker/step
// Machine (node/link/rand) terms degrade the *simulated* cube; proc terms
// are ignored by the simulator and by the threaded backend.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace hypart::fault {

/// Fail step meaning "failed before the schedule starts".
inline constexpr std::int64_t kFromStart = std::numeric_limits<std::int64_t>::min();

struct NodeFault {
  ProcId node = 0;
  std::int64_t at_step = kFromStart;
};

struct LinkFault {
  ProcId a = 0;  ///< endpoints, stored with a < b
  ProcId b = 0;
  std::int64_t at_step = kFromStart;
};

/// Seeded sampler request: draw `nodes` node failures and `links` link
/// failures from mt19937_64(seed) once the machine size is known.
struct FaultSampler {
  std::uint64_t seed = 0;
  std::size_t nodes = 0;
  std::size_t links = 0;
};

/// Real-process fault kinds for the multi-process backend.
enum class ProcFaultKind {
  Kill,       ///< raise(SIGKILL) at the trigger step — a hard crash
  Hang,       ///< stop heartbeating and processing (supervisor must detect)
  TruncFrame, ///< write a deliberately truncated frame, then die
  DelaySend,  ///< delay every send at the trigger step by `delay_ms`
  RandKill,   ///< seeded Kill of a sampled worker at a sampled step
};

[[nodiscard]] const char* to_string(ProcFaultKind kind);

/// One injected process fault.  `proc`/`at_step` are ignored for RandKill
/// (the runtime samples both from mt19937_64(seed) once it knows the worker
/// count and step range, so the same seed fails the same worker at the
/// same step on every run).
struct ProcFault {
  ProcFaultKind kind = ProcFaultKind::Kill;
  ProcId proc = 0;
  std::int64_t at_step = kFromStart;
  std::int64_t delay_ms = 0;   ///< DelaySend only
  std::uint64_t seed = 0;      ///< RandKill only
};

class FaultSet;

/// A machine-independent fault specification.
struct FaultPlan {
  std::vector<NodeFault> node_faults;
  std::vector<LinkFault> link_faults;
  std::optional<FaultSampler> sampler;
  std::vector<ProcFault> proc_faults;

  [[nodiscard]] bool empty() const { return machine_empty() && proc_faults.empty(); }

  /// True when no *machine* (node/link/sampler) faults are present.  The
  /// simulator and the degraded-cube remapper key off this: proc faults
  /// live purely in the multi-process runtime and never degrade the
  /// simulated machine.
  [[nodiscard]] bool machine_empty() const {
    return node_faults.empty() && link_faults.empty() && !sampler.has_value();
  }

  /// Parse the `--faults` spec grammar above.  Throws FaultError on
  /// malformed specs (never a bare std::exception).
  static FaultPlan parse(const std::string& spec);

  /// Materialize against a concrete cube: runs the sampler (skipping
  /// duplicates of explicit faults deterministically) and validates ids.
  /// Throws FaultError if an id is out of range, a link is not a cube
  /// edge, or the plan kills every node.
  [[nodiscard]] FaultSet resolve(const Hypercube& cube) const;

  [[nodiscard]] std::string to_string() const;
};

/// The resolved, step-aware fault state of one machine.
class FaultSet {
 public:
  /// True when nothing ever fails.
  [[nodiscard]] bool empty() const { return node_fail_.empty() && link_fail_.empty(); }

  [[nodiscard]] bool node_failed_at(ProcId p, std::int64_t step) const;
  [[nodiscard]] bool node_ever_fails(ProcId p) const { return node_fail_.contains(p); }
  /// Fail step of `p`; nullopt when the node never fails.
  [[nodiscard]] std::optional<std::int64_t> node_fail_step(ProcId p) const;

  /// Link queries take endpoints in either order.  A link is also
  /// considered failed whenever either endpoint node is failed.
  [[nodiscard]] bool link_failed_at(ProcId a, ProcId b, std::int64_t step) const;
  /// Explicit link failure only — ignores the state of the endpoint nodes.
  /// The router uses this so a route's own (exempt) endpoints don't take
  /// every incident link down with them.
  [[nodiscard]] bool link_cut_at(ProcId a, ProcId b, std::int64_t step) const;

  /// Failed nodes in ascending (fail step, id) order — the deterministic
  /// order the remapper processes failure events in.
  [[nodiscard]] std::vector<NodeFault> node_failures_in_order() const;
  [[nodiscard]] const std::map<std::pair<ProcId, ProcId>, std::int64_t>& link_failures() const {
    return link_fail_;
  }

  [[nodiscard]] std::size_t failed_node_count() const { return node_fail_.size(); }
  [[nodiscard]] std::size_t failed_link_count() const { return link_fail_.size(); }

 private:
  friend struct FaultPlan;
  std::map<ProcId, std::int64_t> node_fail_;                    ///< node -> fail step
  std::map<std::pair<ProcId, ProcId>, std::int64_t> link_fail_;  ///< (a<b) -> fail step
};

}  // namespace hypart::fault
