#include "fault/remap.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"

namespace hypart::fault {

ProcId RemapResult::proc_at(std::size_t block, std::int64_t step) const {
  const auto& tl = timeline_.at(block);
  ProcId owner = tl.front().second;
  for (const auto& [from_step, proc] : tl) {
    if (from_step > step) break;
    owner = proc;
  }
  return owner;
}

RemapResult remap_for_faults(const Partition& part, const Mapping& mapping,
                             const Hypercube& cube, const FaultSet& faults) {
  if (mapping.block_to_proc.size() != part.block_count())
    throw Error(ErrorKind::Config, "remap_for_faults: mapping/partition size mismatch");
  std::vector<std::int64_t> block_words(part.block_count(), 0);
  for (std::size_t b = 0; b < part.block_count(); ++b)
    block_words[b] = static_cast<std::int64_t>(part.blocks()[b].iterations.size());
  return remap_for_faults(block_words, mapping, cube, faults);
}

RemapResult remap_for_faults(const std::vector<std::int64_t>& block_sizes, const Mapping& mapping,
                             const Hypercube& cube, const FaultSet& faults) {
  const std::size_t nblocks = block_sizes.size();
  if (mapping.block_to_proc.size() != nblocks)
    throw Error(ErrorKind::Config, "remap_for_faults: mapping/partition size mismatch");
  if (mapping.processor_count > cube.size())
    throw Error(ErrorKind::Config, "remap_for_faults: mapping larger than the cube");

  RemapResult r;
  r.mapping = mapping;
  r.timeline_.resize(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b)
    r.timeline_[b].emplace_back(std::numeric_limits<std::int64_t>::min(),
                                mapping.block_to_proc[b]);
  if (faults.failed_node_count() == 0) return r;

  // Live per-processor load (iterations) and current block ownership.
  std::vector<std::int64_t> load(cube.size(), 0);
  std::vector<std::vector<std::size_t>> owned(cube.size());
  const std::vector<std::int64_t>& block_words = block_sizes;
  for (std::size_t b = 0; b < nblocks; ++b) {
    ProcId p = mapping.block_to_proc[b];
    load[p] += block_words[b];
    owned[p].push_back(b);
  }

  for (const NodeFault& event : faults.node_failures_in_order()) {
    std::vector<std::size_t> evicted = std::move(owned[event.node]);
    owned[event.node].clear();
    load[event.node] = 0;
    if (evicted.empty()) continue;

    std::vector<ProcId> spares;
    for (ProcId nb : cube.neighbors(event.node))
      if (!faults.node_failed_at(nb, event.at_step)) spares.push_back(nb);
    if (spares.empty())
      throw FaultError("remap_for_faults: node " + std::to_string(event.node) +
                       " failed with no live neighbor to migrate to");

    // Largest block first; each goes to the currently least-loaded spare.
    std::sort(evicted.begin(), evicted.end(), [&](std::size_t x, std::size_t y) {
      if (block_words[x] != block_words[y]) return block_words[x] > block_words[y];
      return x < y;
    });
    for (std::size_t b : evicted) {
      ProcId best = spares.front();
      for (ProcId s : spares)
        if (load[s] < load[best] || (load[s] == load[best] && s < best)) best = s;
      load[best] += block_words[b];
      owned[best].push_back(b);
      r.mapping.block_to_proc[b] = best;
      r.timeline_[b].emplace_back(event.at_step, best);
      r.migrations.push_back({b, event.node, best, event.at_step, block_words[b]});
      r.migration_words += block_words[b];
    }
  }

  r.migration_cost = Cost{0, r.migration_words, r.migration_words};
  return r;
}

}  // namespace hypart::fault
