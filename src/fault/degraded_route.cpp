#include "fault/degraded_route.hpp"

#include <deque>

#include "core/error.hpp"

namespace hypart::fault {

namespace {

/// A hop a->b is usable when the link itself is live and each endpoint is
/// live or exempt (the route's own src/dst — the caller owns what sending
/// from or to a failed node means).
bool hop_usable(const FaultSet& faults, ProcId a, ProcId b, ProcId src, ProcId dst,
                std::int64_t step) {
  if (faults.link_cut_at(a, b, step)) return false;
  if (a != src && a != dst && faults.node_failed_at(a, step)) return false;
  if (b != src && b != dst && faults.node_failed_at(b, step)) return false;
  return true;
}

}  // namespace

Route route_with_faults(const Hypercube& cube, ProcId src, ProcId dst, const FaultSet& faults,
                        std::int64_t step) {
  Route r;
  if (src == dst) return r;

  // Fast path: the plain e-cube route, if every hop survives.
  std::vector<ProcId> plain = cube.ecube_route(src, dst);
  bool intact = true;
  ProcId at = src;
  for (ProcId hop : plain) {
    if (!hop_usable(faults, at, hop, src, dst, step)) {
      intact = false;
      break;
    }
    at = hop;
  }
  if (intact) {
    r.hops = std::move(plain);
    return r;
  }

  // Deterministic fallback: BFS over the live subgraph.  Neighbor order is
  // dimension 0..n-1 (exactly e-cube's correction order) and the first
  // discovered parent is kept, so the detour is unique and stable.
  const std::size_t n = cube.size();
  std::vector<ProcId> parent(n, static_cast<ProcId>(n));  // n = unvisited
  std::deque<ProcId> frontier{src};
  parent[src] = src;
  while (!frontier.empty() && parent[dst] == n) {
    ProcId u = frontier.front();
    frontier.pop_front();
    for (unsigned k = 0; k < cube.dimension(); ++k) {
      ProcId v = u ^ (ProcId{1} << k);
      if (parent[v] != n) continue;
      if (!hop_usable(faults, u, v, src, dst, step)) continue;
      parent[v] = u;
      frontier.push_back(v);
    }
  }
  if (parent[dst] == n)
    throw FaultError("degraded hypercube disconnects " + std::to_string(src) + " -> " +
                     std::to_string(dst) + " at step " + std::to_string(step));
  std::vector<ProcId> rev;
  for (ProcId v = dst; v != src; v = parent[v]) rev.push_back(v);
  r.hops.assign(rev.rbegin(), rev.rend());
  r.rerouted = true;
  return r;
}

std::int64_t degraded_distance(const Hypercube& cube, ProcId src, ProcId dst,
                               const FaultSet& faults, std::int64_t step) {
  return static_cast<std::int64_t>(route_with_faults(cube, src, dst, faults, step).hops.size());
}

}  // namespace hypart::fault
