// hypart::fault — degraded-hypercube remapping (spare-node policy).
//
// When a node fails, every block it owns migrates to one of the node's
// hypercube (Gray-code) neighbors: among the neighbors still alive at the
// failure step, the one with the lowest current compute load (iteration
// count), ties broken by lowest processor id.  Blocks leave the failed
// node largest-first so the load spreads instead of piling onto one spare.
// Failure events are processed in (fail step, node id) order, so a spare
// that later fails itself hands the inherited blocks on — after the last
// event no block lives on any ever-failed node.
//
// Each migrated block is charged words x (t_start + t_comm), words being
// the block's iteration count (its live state must cross one link); the
// simulator folds this into the degraded total so SimResult reports honest
// numbers instead of a free recovery.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.hpp"
#include "mapping/tig.hpp"
#include "partition/blocks.hpp"
#include "sim/machine.hpp"

namespace hypart::fault {

struct Migration {
  std::size_t block = 0;
  ProcId from = 0;
  ProcId to = 0;
  std::int64_t at_step = kFromStart;
  std::int64_t words = 0;  ///< iteration count of the migrated block
};

struct RemapResult {
  /// Block -> processor after every failure event; no ever-failed node
  /// owns a block, so this mapping is safe to hand to run_parallel.
  Mapping mapping;
  std::vector<Migration> migrations;
  std::int64_t migration_words = 0;
  Cost migration_cost;  ///< {0, migration_words, migration_words}

  /// Owner of `block` at simulated step `step` (failure timeline aware).
  [[nodiscard]] ProcId proc_at(std::size_t block, std::int64_t step) const;

 private:
  friend RemapResult remap_for_faults(const std::vector<std::int64_t>& block_sizes,
                                      const Mapping& mapping, const Hypercube& cube,
                                      const FaultSet& faults);
  /// Per-block ownership history: (owned-from step, proc), step-ascending.
  std::vector<std::vector<std::pair<std::int64_t, ProcId>>> timeline_;
};

/// Apply the spare-node policy to every node failure in `faults`.
/// Throws FaultError when a failed node has no live neighbor to take its
/// blocks.  With no node failures the input mapping is returned verbatim.
RemapResult remap_for_faults(const Partition& part, const Mapping& mapping,
                             const Hypercube& cube, const FaultSet& faults);

/// Same policy fed by per-block iteration counts instead of materialized
/// blocks — the symbolic paths' entry point (block_sizes[i] is the size of
/// the block at index i of `mapping`, e.g. the lattice sorted order).
RemapResult remap_for_faults(const std::vector<std::int64_t>& block_sizes, const Mapping& mapping,
                             const Hypercube& cube, const FaultSet& faults);

}  // namespace hypart::fault
