#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cctype>
#include <random>
#include <sstream>

#include "core/error.hpp"

namespace hypart::fault {

namespace {

/// Split `s` on `sep`, keeping empty pieces (they are diagnosed later).
std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::int64_t parse_int(const std::string& s, const std::string& what) {
  if (s.empty()) throw FaultError("fault spec: missing " + what);
  std::size_t pos = 0;
  std::int64_t v = 0;
  try {
    v = std::stoll(s, &pos);
  } catch (const std::exception&) {
    throw FaultError("fault spec: bad " + what + " '" + s + "'");
  }
  if (pos != s.size()) throw FaultError("fault spec: bad " + what + " '" + s + "'");
  return v;
}

/// Parse `<body>[@<step>]`, returning the body and the fail step.
std::pair<std::string, std::int64_t> split_at_step(const std::string& term) {
  std::size_t at = term.find('@');
  if (at == std::string::npos) return {term, kFromStart};
  return {term.substr(0, at), parse_int(term.substr(at + 1), "fail step")};
}

/// Parse the sampler counts `<k>n`, `<k>l` or `<k>n<m>l`.
FaultSampler parse_sampler_counts(std::uint64_t seed, const std::string& counts) {
  FaultSampler s;
  s.seed = seed;
  std::size_t i = 0;
  while (i < counts.size()) {
    std::size_t start = i;
    while (i < counts.size() && std::isdigit(static_cast<unsigned char>(counts[i]))) ++i;
    if (start == i || i == counts.size())
      throw FaultError("fault spec: bad sampler counts '" + counts + "' (want e.g. 2n1l)");
    std::size_t k = static_cast<std::size_t>(parse_int(counts.substr(start, i - start), "count"));
    char unit = counts[i++];
    if (unit == 'n') s.nodes += k;
    else if (unit == 'l') s.links += k;
    else throw FaultError(std::string("fault spec: unknown sampler unit '") + unit + "'");
  }
  if (s.nodes == 0 && s.links == 0)
    throw FaultError("fault spec: sampler requests no faults: '" + counts + "'");
  return s;
}

/// Parse one `proc:` term body (everything after the `proc:` prefix).
ProcFault parse_proc_fault(const std::string& rest, const std::string& term) {
  std::size_t colon = rest.find(':');
  if (colon == std::string::npos)
    throw FaultError("fault spec: proc term '" + term +
                     "' wants proc:<kill|hang|trunc|delay|rand>:...");
  std::string kind = rest.substr(0, colon);
  std::string body = rest.substr(colon + 1);
  ProcFault f;
  if (kind == "rand") {
    f.kind = ProcFaultKind::RandKill;
    std::int64_t seed = parse_int(body, "seed");
    if (seed < 0) throw FaultError("fault spec: negative seed in '" + term + "'");
    f.seed = static_cast<std::uint64_t>(seed);
    return f;
  }
  auto [ids, step] = split_at_step(body);
  f.at_step = step;
  if (kind == "kill") f.kind = ProcFaultKind::Kill;
  else if (kind == "hang") f.kind = ProcFaultKind::Hang;
  else if (kind == "trunc") f.kind = ProcFaultKind::TruncFrame;
  else if (kind == "delay") f.kind = ProcFaultKind::DelaySend;
  else
    throw FaultError("fault spec: unknown proc fault '" + kind +
                     "' (want kill|hang|trunc|delay|rand)");
  std::string id_part = ids;
  if (f.kind == ProcFaultKind::DelaySend) {
    std::size_t c2 = ids.find(':');
    if (c2 == std::string::npos)
      throw FaultError("fault spec: delay term '" + term + "' wants proc:delay:<id>:<ms>");
    id_part = ids.substr(0, c2);
    f.delay_ms = parse_int(ids.substr(c2 + 1), "delay ms");
    if (f.delay_ms < 0) throw FaultError("fault spec: negative delay in '" + term + "'");
  }
  std::int64_t id = parse_int(id_part, "worker id");
  if (id < 0) throw FaultError("fault spec: negative worker id in '" + term + "'");
  f.proc = static_cast<ProcId>(id);
  return f;
}

}  // namespace

const char* to_string(ProcFaultKind kind) {
  switch (kind) {
    case ProcFaultKind::Kill: return "kill";
    case ProcFaultKind::Hang: return "hang";
    case ProcFaultKind::TruncFrame: return "trunc";
    case ProcFaultKind::DelaySend: return "delay";
    case ProcFaultKind::RandKill: return "rand";
  }
  return "?";
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& term : split(spec, ',')) {
    if (term.empty()) throw FaultError("fault spec: empty term in '" + spec + "'");
    std::size_t colon = term.find(':');
    if (colon == std::string::npos)
      throw FaultError("fault spec: term '" + term + "' has no kind prefix");
    std::string kind = term.substr(0, colon);
    std::string rest = term.substr(colon + 1);
    if (kind == "node") {
      auto [body, step] = split_at_step(rest);
      std::int64_t id = parse_int(body, "node id");
      if (id < 0) throw FaultError("fault spec: negative node id in '" + term + "'");
      plan.node_faults.push_back({static_cast<ProcId>(id), step});
    } else if (kind == "link") {
      auto [body, step] = split_at_step(rest);
      std::size_t dash = body.find('-');
      if (dash == std::string::npos)
        throw FaultError("fault spec: link term '" + term + "' wants <a>-<b>");
      std::int64_t a = parse_int(body.substr(0, dash), "link endpoint");
      std::int64_t b = parse_int(body.substr(dash + 1), "link endpoint");
      if (a < 0 || b < 0 || a == b)
        throw FaultError("fault spec: bad link endpoints in '" + term + "'");
      LinkFault lf;
      lf.a = static_cast<ProcId>(std::min(a, b));
      lf.b = static_cast<ProcId>(std::max(a, b));
      lf.at_step = step;
      plan.link_faults.push_back(lf);
    } else if (kind == "rand") {
      if (plan.sampler) throw FaultError("fault spec: more than one rand: term");
      std::size_t colon2 = rest.find(':');
      if (colon2 == std::string::npos)
        throw FaultError("fault spec: rand term wants rand:<seed>:<counts>");
      std::int64_t seed = parse_int(rest.substr(0, colon2), "seed");
      if (seed < 0) throw FaultError("fault spec: negative seed in '" + term + "'");
      plan.sampler =
          parse_sampler_counts(static_cast<std::uint64_t>(seed), rest.substr(colon2 + 1));
    } else if (kind == "proc") {
      plan.proc_faults.push_back(parse_proc_fault(rest, term));
    } else {
      throw FaultError("fault spec: unknown kind '" + kind + "' (want node|link|rand|proc)");
    }
  }
  return plan;
}

FaultSet FaultPlan::resolve(const Hypercube& cube) const {
  const std::size_t n = cube.size();
  FaultSet fs;
  auto add_node = [&](ProcId p, std::int64_t step) {
    if (p >= n)
      throw FaultError("fault plan: node " + std::to_string(p) + " out of range for " +
                       cube.name());
    auto [it, inserted] = fs.node_fail_.emplace(p, step);
    if (!inserted) it->second = std::min(it->second, step);  // earliest failure wins
  };
  auto add_link = [&](ProcId a, ProcId b, std::int64_t step) {
    if (a >= n || b >= n)
      throw FaultError("fault plan: link " + std::to_string(a) + "-" + std::to_string(b) +
                       " out of range for " + cube.name());
    if (cube.distance(a, b) != 1)
      throw FaultError("fault plan: " + std::to_string(a) + "-" + std::to_string(b) +
                       " is not a " + cube.name() + " edge");
    auto key = std::minmax(a, b);
    auto [it, inserted] = fs.link_fail_.emplace(std::make_pair(key.first, key.second), step);
    if (!inserted) it->second = std::min(it->second, step);
  };

  for (const NodeFault& f : node_faults) add_node(f.node, f.at_step);
  for (const LinkFault& f : link_faults) add_link(f.a, f.b, f.at_step);

  if (sampler) {
    std::mt19937_64 rng(sampler->seed);
    // Rejection-sample distinct ids not already failed; the loop is bounded
    // because we refuse to fail the whole machine below anyway.
    std::uniform_int_distribution<ProcId> node_dist(0, static_cast<ProcId>(n - 1));
    if (sampler->nodes >= n)
      throw FaultError("fault plan: sampler would fail every node of " + cube.name());
    std::size_t drawn = 0;
    while (drawn < sampler->nodes && fs.node_fail_.size() < n - 1) {
      ProcId p = node_dist(rng);
      if (fs.node_fail_.contains(p)) continue;
      fs.node_fail_.emplace(p, kFromStart);
      ++drawn;
    }
    std::uniform_int_distribution<unsigned> dim_dist(0, cube.dimension() - 1);
    drawn = 0;
    const std::size_t total_links = n / 2 * cube.dimension();
    if (sampler->links > total_links)
      throw FaultError("fault plan: sampler wants more links than the cube has");
    while (drawn < sampler->links && fs.link_fail_.size() < total_links) {
      ProcId a = node_dist(rng);
      ProcId b = a ^ (ProcId{1} << dim_dist(rng));
      auto key = std::minmax(a, b);
      if (fs.link_fail_.contains({key.first, key.second})) continue;
      fs.link_fail_.emplace(std::make_pair(key.first, key.second), kFromStart);
      ++drawn;
    }
  }

  if (fs.node_fail_.size() >= n)
    throw FaultError("fault plan: every node of " + cube.name() + " is failed");
  return fs;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (const NodeFault& f : node_faults) {
    sep();
    os << "node:" << f.node;
    if (f.at_step != kFromStart) os << "@" << f.at_step;
  }
  for (const LinkFault& f : link_faults) {
    sep();
    os << "link:" << f.a << "-" << f.b;
    if (f.at_step != kFromStart) os << "@" << f.at_step;
  }
  if (sampler) {
    sep();
    os << "rand:" << sampler->seed << ":";
    if (sampler->nodes > 0) os << sampler->nodes << "n";
    if (sampler->links > 0) os << sampler->links << "l";
  }
  for (const ProcFault& f : proc_faults) {
    sep();
    os << "proc:" << hypart::fault::to_string(f.kind);
    if (f.kind == ProcFaultKind::RandKill) {
      os << ":" << f.seed;
      continue;
    }
    os << ":" << f.proc;
    if (f.kind == ProcFaultKind::DelaySend) os << ":" << f.delay_ms;
    if (f.at_step != kFromStart) os << "@" << f.at_step;
  }
  return os.str();
}

bool FaultSet::node_failed_at(ProcId p, std::int64_t step) const {
  auto it = node_fail_.find(p);
  return it != node_fail_.end() && it->second <= step;
}

std::optional<std::int64_t> FaultSet::node_fail_step(ProcId p) const {
  auto it = node_fail_.find(p);
  if (it == node_fail_.end()) return std::nullopt;
  return it->second;
}

bool FaultSet::link_failed_at(ProcId a, ProcId b, std::int64_t step) const {
  if (node_failed_at(a, step) || node_failed_at(b, step)) return true;
  return link_cut_at(a, b, step);
}

bool FaultSet::link_cut_at(ProcId a, ProcId b, std::int64_t step) const {
  auto key = std::minmax(a, b);
  auto it = link_fail_.find({key.first, key.second});
  return it != link_fail_.end() && it->second <= step;
}

std::vector<NodeFault> FaultSet::node_failures_in_order() const {
  std::vector<NodeFault> out;
  out.reserve(node_fail_.size());
  for (const auto& [p, step] : node_fail_) out.push_back({p, step});
  std::sort(out.begin(), out.end(), [](const NodeFault& x, const NodeFault& y) {
    if (x.at_step != y.at_step) return x.at_step < y.at_step;
    return x.node < y.node;
  });
  return out;
}

}  // namespace hypart::fault
