#include "systolic/systolic.hpp"

#include <algorithm>
#include <sstream>

namespace hypart {

std::string SystolicArray::summary() const {
  std::ostringstream os;
  os << pe_count << " PEs (" << dimensionality << "-D array), " << link_directions.size()
     << " link directions, " << directed_links << " links, span " << schedule_span
     << " steps, mean PE utilization " << static_cast<int>(mean_pe_utilization * 100 + 0.5)
     << "%";
  return os.str();
}

SystolicArray derive_systolic_array(const ComputationStructure& q,
                                    const ProjectedStructure& ps) {
  SystolicArray array;
  array.pe_count = ps.point_count();
  array.dimensionality = ps.dimension() == 0 ? 0 : ps.dimension() - 1;
  array.pe_positions = ps.points();

  for (const IntVec& dp : ps.projected_deps_scaled()) {
    if (is_zero(dp)) continue;
    if (std::find(array.link_directions.begin(), array.link_directions.end(), dp) ==
        array.link_directions.end())
      array.link_directions.push_back(dp);
  }
  array.directed_links = ps.to_digraph().edge_count();

  ScheduleProfile profile = profile_schedule(ps.time_function(), q.vertices());
  array.schedule_span = profile.span();

  std::size_t busy_pe_steps = 0;
  for (std::size_t i = 0; i < ps.point_count(); ++i) {
    std::size_t pop = ps.line_population(i);
    array.busiest_pe_steps = std::max(array.busiest_pe_steps, pop);
    busy_pe_steps += pop;  // a line is busy exactly once per resident iteration
  }
  const double denom =
      static_cast<double>(array.pe_count) * static_cast<double>(array.schedule_span);
  array.mean_pe_utilization = denom > 0 ? static_cast<double>(busy_pe_steps) / denom : 0.0;
  return array;
}

}  // namespace hypart
