// hypart — systolic-array space transformation, for comparison.
//
// The hyperplane method's classic space transformation (Moldovan & Fortes,
// Lee & Kedem — the paper's refs [11], [15]) assigns each projection line
// to its own processing element: the projected structure *is* the systolic
// array.  Section II argues this is unsuitable for message-passing
// machines — the PE count grows with the problem, PEs idle outside their
// line's active steps, and every projected dependence becomes a physical
// link.  This module derives that array so benches can quantify the
// argument against Algorithm 1's fixed-machine blocks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "partition/projection.hpp"

namespace hypart {

struct SystolicArray {
  std::size_t pe_count = 0;        ///< one PE per projection line
  std::size_t dimensionality = 0;  ///< n-1 (the zero-hyperplane's dimension)
  std::vector<IntVec> pe_positions;      ///< scaled projected points
  std::vector<IntVec> link_directions;   ///< distinct nonzero projected deps (scaled)
  std::size_t directed_links = 0;        ///< arcs of the projected structure
  std::int64_t schedule_span = 0;        ///< steps the wavefront takes
  std::size_t busiest_pe_steps = 0;      ///< iterations on the longest line
  double mean_pe_utilization = 0.0;      ///< busy PE-steps / (PEs * span)

  [[nodiscard]] std::string summary() const;
};

/// Derive the systolic array induced by projecting along Π.
SystolicArray derive_systolic_array(const ComputationStructure& q,
                                    const ProjectedStructure& ps);

}  // namespace hypart
