#include "baselines/independent.hpp"

#include <map>
#include <stdexcept>

namespace hypart {

IntVec lattice_residue(const IntVec& x, const HermiteResult& h) {
  IntVec r = x;
  // Walk the pivots of the column HNF: pivot k sits in column k; its row is
  // the first row where the column is nonzero below all earlier pivots.
  std::size_t row = 0;
  for (std::size_t c = 0; c < h.rank; ++c) {
    // Find this pivot's row (first nonzero entry of column c at/after `row`).
    while (row < h.h.rows() && h.h.at(row, c) == 0) ++row;
    if (row == h.h.rows()) break;
    std::int64_t piv = h.h.at(row, c);
    std::int64_t v = r[row];
    std::int64_t q = v / piv;
    if (v % piv < 0) --q;  // floor division keeps residues in [0, piv)
    if (q != 0)
      for (std::size_t i = 0; i < r.size(); ++i)
        r[i] = detail::checked_sub(r[i], detail::checked_mul(q, h.h.at(i, c)));
    ++row;
  }
  return r;
}

IndependentPartition independent_partition(const ComputationStructure& q) {
  IndependentPartition result;
  const std::vector<IntVec>& deps = q.dependences();

  if (deps.empty()) {
    // No dependences: every iteration is its own block.
    result.lattice_rank = 0;
    result.lattice_class_count = 0;
    result.labels.resize(q.vertices().size());
    for (std::size_t i = 0; i < result.labels.size(); ++i) result.labels[i] = i;
    result.block_count = result.labels.size();
    return result;
  }

  IntMat d = IntMat::from_cols(deps);
  HermiteResult h = hermite_normal_form(d);
  result.lattice_rank = h.rank;

  SmithResult s = smith_normal_form(d);
  result.elementary_divisors = s.divisors;
  if (h.rank == q.dimension()) {
    std::int64_t product = 1;
    for (std::int64_t e : s.divisors) product = detail::checked_mul(product, e);
    result.lattice_class_count = product;
  }

  std::map<IntVec, std::size_t> class_ids;
  result.labels.reserve(q.vertices().size());
  for (const IntVec& v : q.vertices()) {
    IntVec res = lattice_residue(v, h);
    auto [it, inserted] = class_ids.try_emplace(res, class_ids.size());
    result.labels.push_back(it->second);
  }
  result.block_count = class_ids.size();
  return result;
}

}  // namespace hypart
