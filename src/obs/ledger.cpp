#include "obs/ledger.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string_view>

#include "core/json_reader.hpp"
#include "core/json_writer.hpp"
#include "exec/parallel_runtime.hpp"
#include "exec/proc_runtime.hpp"
#include "perf/table.hpp"

namespace hypart::obs {

namespace {

const char* accounting_name(CommAccounting a) {
  switch (a) {
    case CommAccounting::PaperMaxChannel: return "paper";
    case CommAccounting::PerStepBarrier: return "barrier";
    case CommAccounting::LinkContention: return "contention";
  }
  return "unknown";
}

void breakdown_to_json(JsonWriter& w, const char* key, const ComponentBreakdown& b) {
  w.key(key).begin_object();
  w.field("compute", b.compute);
  w.field("comm", b.comm);
  w.field("stall", b.stall);
  w.field("other", b.other);
  w.field("total", b.total);
  w.end_object();
}

ComponentBreakdown breakdown_from_json(const JsonValue& v) {
  ComponentBreakdown b;
  b.compute = v.number_or("compute", 0.0);
  b.comm = v.number_or("comm", 0.0);
  b.stall = v.number_or("stall", 0.0);
  b.other = v.number_or("other", 0.0);
  b.total = v.number_or("total", 0.0);
  return b;
}

LedgerRow row_from_json(const JsonValue& v) {
  LedgerRow r;
  r.workload = v.string_or("workload", "?");
  r.iterations = v.int_or("iterations", 0);
  r.cube_dim = static_cast<unsigned>(v.int_or("cube_dim", 0));
  r.accounting = v.string_or("accounting", "?");
  r.backend = v.string_or("backend", "threads");  // pre-column rows: threads
  r.repeats = static_cast<int>(v.int_or("repeats", 0));
  r.predicted = breakdown_from_json(v.get("predicted"));
  r.measured = breakdown_from_json(v.get("measured_us"));
  r.measured_min_us = v.number_or("measured_min_us", 0.0);
  r.calibration_us_per_unit = v.number_or("calibration_us_per_unit", 0.0);
  return r;
}

}  // namespace

double LedgerRow::mean_abs_share_error() const {
  return (std::abs(share_error(predicted.compute, measured.compute)) +
          std::abs(share_error(predicted.comm, measured.comm)) +
          std::abs(share_error(predicted.stall, measured.stall)) +
          std::abs(share_error(predicted.other, measured.other))) /
         4.0;
}

std::string LedgerRow::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("workload", workload);
  w.field("iterations", iterations);
  w.field("cube_dim", static_cast<std::int64_t>(cube_dim));
  w.field("accounting", accounting);
  w.field("backend", backend);
  w.field("repeats", static_cast<std::int64_t>(repeats));
  breakdown_to_json(w, "predicted", predicted);
  breakdown_to_json(w, "measured_us", measured);
  w.field("measured_min_us", measured_min_us);
  w.field("calibration_us_per_unit", calibration_us_per_unit);
  // Redundant with the breakdowns but the artifact consumers (dashboards,
  // diff scripts) want the verdict columns precomputed.
  w.key("share_error").begin_object();
  w.field("compute", share_error(predicted.compute, measured.compute));
  w.field("comm", share_error(predicted.comm, measured.comm));
  w.field("stall", share_error(predicted.stall, measured.stall));
  w.field("other", share_error(predicted.other, measured.other));
  w.field("mean_abs", mean_abs_share_error());
  w.end_object();
  w.end_object();
  return w.str();
}

LedgerRow run_ledger(const LoopNest& nest, PipelineConfig config, const LedgerOptions& opts) {
  // The runtime interprets materialized iterations, so the prediction side
  // must produce a dense Partition/Mapping pair for it.
  config.space_mode = SpaceMode::Dense;
  config.obs = opts.obs;
  PipelineResult r = run_pipeline(nest, config);

  LedgerRow row;
  row.workload = nest.name();
  row.iterations = static_cast<std::int64_t>(r.iteration_count());
  row.cube_dim = config.cube_dim;
  row.accounting = accounting_name(config.sim.accounting);
  row.backend = to_string(opts.backend);
  row.repeats = std::max(1, opts.repeats);

  const MachineParams& m = config.machine;
  row.predicted.total = r.sim.total.value(m);
  row.predicted.compute = r.sim.compute_bottleneck.value(m);
  row.predicted.comm = r.sim.comm_bottleneck.value(m);
  row.predicted.other = r.sim.migration_cost.value(m);
  // Exact residual, so the breakdown tiles the total by construction.  It
  // is the schedule's serialization slack: zero under PaperMaxChannel
  // (total = compute + comm there), positive under the per-step barrier
  // accountings when no single processor is the bottleneck of every step.
  row.predicted.stall =
      row.predicted.total - row.predicted.compute - row.predicted.comm - row.predicted.other;

  // ---- measured side: repeat the real run, keep the median wall ----------
  struct Repeat {
    double wall_us;
    ComponentBreakdown breakdown;
  };
  // Shared by both backends: the critical worker is the one with the
  // largest attributed phase time; its phases explain the run, and the
  // wall clock can only exceed its phase sum, so `other` is a true
  // residual >= 0 up to scheduler noise.
  auto attribute = [](double wall_us, const std::vector<double>& compute_us,
                      const std::vector<double>& wait_us, const std::vector<double>& send_us) {
    std::size_t critical = 0;
    double best = -1.0;
    for (std::size_t p = 0; p < compute_us.size(); ++p) {
      double s = compute_us[p] + wait_us[p] + send_us[p];
      if (s > best) {
        best = s;
        critical = p;
      }
    }
    Repeat rep;
    rep.wall_us = wall_us;
    rep.breakdown.total = wall_us;
    if (!compute_us.empty()) {
      rep.breakdown.compute = compute_us[critical];
      rep.breakdown.stall = wait_us[critical];
      rep.breakdown.comm = send_us[critical];
    }
    rep.breakdown.other =
        rep.breakdown.total - rep.breakdown.compute - rep.breakdown.comm - rep.breakdown.stall;
    return rep;
  };
  std::vector<Repeat> reps;
  reps.reserve(static_cast<std::size_t>(row.repeats));
  for (int i = 0; i < row.repeats; ++i) {
    if (opts.backend == ExecBackend::Procs) {
      ProcRunOptions run_opts;
      run_opts.obs = opts.obs;
      run_opts.measure_phases = true;
      ProcRunResult run = run_procs(nest, *r.structure, r.time_function, r.partition,
                                    r.mapping.mapping, r.dependence, run_opts);
      const ProcRunStats& st = run.stats;
      reps.push_back(attribute(st.wall_us, st.per_proc_compute_us, st.per_proc_wait_us,
                               st.per_proc_send_us));
    } else {
      ParallelRunOptions run_opts;
      run_opts.obs = opts.obs;
      run_opts.measure_phases = true;
      ParallelRunResult run = run_parallel(nest, *r.structure, r.time_function, r.partition,
                                           r.mapping.mapping, r.dependence, run_opts);
      const ParallelRunStats& st = run.stats;
      reps.push_back(attribute(st.wall_us, st.per_proc_compute_us, st.per_proc_wait_us,
                               st.per_proc_send_us));
    }
  }

  std::sort(reps.begin(), reps.end(),
            [](const Repeat& a, const Repeat& b) { return a.wall_us < b.wall_us; });
  row.measured_min_us = reps.front().wall_us;
  row.measured = reps[reps.size() / 2].breakdown;

  if (row.predicted.total > 0.0)
    row.calibration_us_per_unit = row.measured.total / row.predicted.total;
  return row;
}

bool AccuracyLedger::load(const std::string& path, std::string& error) {
  JsonValue doc;
  if (!parse_json_file(path, doc, error)) return false;
  if (doc.string_or("schema", "") != "hypart-ledger-v1") {
    error = path + ": not a hypart-ledger-v1 file";
    return false;
  }
  const JsonValue& rows = doc.get("rows");
  if (!rows.is_array()) {
    error = path + ": missing rows array";
    return false;
  }
  for (const JsonValue& v : rows.as_array()) rows_.push_back(row_from_json(v));
  return true;
}

bool AccuracyLedger::save(const std::string& path, std::string& error) const {
  std::ofstream out(path);
  if (!out) {
    error = path + ": cannot open for writing";
    return false;
  }
  out << to_json() << '\n';
  if (!out) {
    error = path + ": write failed";
    return false;
  }
  return true;
}

std::string AccuracyLedger::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "hypart-ledger-v1");
  w.begin_array("rows");
  for (const LedgerRow& r : rows_) w.raw_value(r.to_json());
  w.end_array();
  w.end_object();
  return w.str();
}

std::string AccuracyLedger::table() const {
  TextTable t({"workload", "backend", "iters", "component", "predicted", "share", "measured us",
               "share", "dshare"});
  auto pct = [](double share) {
    std::ostringstream os;
    os.precision(1);
    os << std::fixed << share * 100.0 << "%";
    return os.str();
  };
  auto num = [](double v) {
    std::ostringstream os;
    os.precision(1);
    os << std::fixed << v;
    return os.str();
  };
  for (const LedgerRow& r : rows_) {
    struct Line {
      const char* name;
      double pred, meas;
    };
    const Line lines[] = {
        {"compute", r.predicted.compute, r.measured.compute},
        {"comm", r.predicted.comm, r.measured.comm},
        {"stall", r.predicted.stall, r.measured.stall},
        {"other", r.predicted.other, r.measured.other},
        {"total", r.predicted.total, r.measured.total},
    };
    bool first = true;
    for (const Line& l : lines) {
      const bool total = std::string_view(l.name) == "total";
      t.row(first ? r.workload : std::string(), first ? r.backend : std::string(),
            first ? std::to_string(r.iterations) : std::string(), l.name,
            num(l.pred), total ? "" : pct(r.predicted.share(l.pred)), num(l.meas),
            total ? "" : pct(r.measured.share(l.meas)),
            total ? "" : pct(r.share_error(l.pred, l.meas)));
      first = false;
    }
  }
  return t.to_string();
}

}  // namespace hypart::obs
