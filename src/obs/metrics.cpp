#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/json_writer.hpp"

namespace hypart::obs {

void HistogramData::observe(std::int64_t v) {
  if (counts.size() != upper_bounds.size() + 1) counts.assign(upper_bounds.size() + 1, 0);
  std::size_t b = static_cast<std::size_t>(
      std::lower_bound(upper_bounds.begin(), upper_bounds.end(), v) - upper_bounds.begin());
  ++counts[b];
  if (count == 0) {
    min = v;
    max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
}

std::int64_t HistogramData::percentile(double q) const {
  if (count <= 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the k-th smallest observation with k = ceil(q * count),
  // at least 1 (so p0 returns the minimum, not bucket 0's bound).
  std::int64_t rank = static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  std::int64_t seen = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen >= rank) {
      // Overflow bucket has no upper bound; max is the tightest estimate.
      std::int64_t v = (b < upper_bounds.size()) ? upper_bounds[b] : max;
      return std::clamp(v, min, max);
    }
  }
  return max;
}

std::int64_t MetricsSnapshot::counter_sum(const std::string& prefix) const {
  std::int64_t total = 0;
  for (auto it = counters.lower_bound(prefix); it != counters.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second;
  }
  return total;
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [k, v] : counters) w.field(k, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [k, v] : gauges) w.field(k, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [k, h] : histograms) {
    w.key(k).begin_object();
    w.field("count", h.count);
    w.field("sum", h.sum);
    if (h.count > 0) {
      w.field("min", h.min);
      w.field("max", h.max);
      w.field("mean", h.mean());
    }
    w.begin_array("upper_bounds");
    for (std::int64_t b : h.upper_bounds) w.value(b);
    w.end_array();
    w.begin_array("counts");
    for (std::int64_t c : h.counts) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("series").begin_object();
  for (const auto& [k, raw] : series) {
    // Points may arrive from multiple threads in any interleaving; render
    // in x order (stable on ties) so the JSON is identical across thread
    // counts — the registry's byte-identical-output guarantee.
    std::vector<SeriesPoint> pts = raw;
    std::stable_sort(pts.begin(), pts.end(),
                     [](const SeriesPoint& a, const SeriesPoint& b) { return a.x < b.x; });
    w.begin_array(k);
    for (const SeriesPoint& p : pts) {
      w.begin_object();
      w.field("x", p.x);
      w.field("y", p.y);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string MetricsSnapshot::summary() const {
  std::ostringstream os;
  os << "metrics: " << counters.size() << " counters, " << gauges.size() << " gauges, "
     << histograms.size() << " histograms, " << series.size() << " series\n";
  for (const auto& [k, v] : counters)
    if (k.find(".proc.") == std::string::npos)  // per-proc detail stays in the JSON
      os << "  " << k << " = " << v << "\n";
  for (const auto& [k, v] : gauges) os << "  " << k << " = " << v << "\n";
  for (const auto& [k, h] : histograms) {
    os << "  " << k << ": n=" << h.count;
    if (h.count > 0) os << " min=" << h.min << " mean=" << h.mean() << " max=" << h.max;
    os << "\n";
  }
  return os.str();
}

void MetricsRegistry::add(const std::string& name, std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.counters[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.gauges[name] = value;
}

void MetricsRegistry::observe(const std::string& name, std::int64_t v,
                              const std::vector<std::int64_t>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = data_.histograms.find(name);
  if (it == data_.histograms.end()) {
    HistogramData h;
    h.upper_bounds = upper_bounds;
    h.counts.assign(upper_bounds.size() + 1, 0);
    it = data_.histograms.emplace(name, std::move(h)).first;
  }
  it->second.observe(v);
}

void MetricsRegistry::append(const std::string& name, std::int64_t x, double y) {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.series[name].push_back({x, y});
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  data_ = MetricsSnapshot{};
}

}  // namespace hypart::obs
