// hypart::obs — metrics registry: counters, gauges, fixed-bucket histograms
// and step-indexed series.
//
// The registry collects *deterministic* quantities only — iteration counts,
// message/word/hop distributions, busiest-link series — never wall-clock
// time (wall-clock durations belong to the trace, see obs/trace.hpp).  Two
// runs over identical inputs therefore serialize to byte-identical JSON,
// which makes metrics output diffable and regressable.  All maps are
// ordered by metric name, so serialization order is stable too.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace hypart::obs {

/// Fixed-bucket histogram: counts_[i] holds observations v <= upper_bounds[i]
/// (first matching bound); the final bucket is the +inf overflow.
struct HistogramData {
  std::vector<std::int64_t> upper_bounds;  ///< ascending bucket upper bounds
  std::vector<std::int64_t> counts;        ///< size upper_bounds.size() + 1
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;  ///< valid when count > 0
  std::int64_t max = 0;  ///< valid when count > 0

  void observe(std::int64_t v);
  [[nodiscard]] double mean() const { return count > 0 ? static_cast<double>(sum) / static_cast<double>(count) : 0.0; }
  /// Nearest-rank percentile estimate over the fixed buckets: the upper
  /// bound of the bucket holding the ceil(q*count)-th observation, clamped
  /// to [min, max] (bucket bounds can overshoot the true extremes).  q in
  /// [0, 1]; returns 0 on an empty histogram.
  [[nodiscard]] std::int64_t percentile(double q) const;
};

struct SeriesPoint {
  std::int64_t x = 0;
  double y = 0.0;
};

/// A point-in-time copy of the registry, serializable via JsonWriter.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, std::vector<SeriesPoint>> series;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() && series.empty();
  }
  /// Sum of all counters whose name starts with `prefix`.
  [[nodiscard]] std::int64_t counter_sum(const std::string& prefix) const;
  /// Deterministic JSON rendering (object with counters/gauges/histograms/series).
  [[nodiscard]] std::string to_json() const;
  /// Short human-readable summary for CLI output.
  [[nodiscard]] std::string summary() const;
};

/// Thread-safe named-metric registry.  Instrumentation sites hold a
/// `MetricsRegistry*` that may be null and must test it before recording.
class MetricsRegistry {
 public:
  /// Increment counter `name` by `delta` (creates it at zero).
  void add(const std::string& name, std::int64_t delta = 1);
  /// Set gauge `name` to `value` (last write wins).
  void set_gauge(const std::string& name, double value);
  /// Record `v` in histogram `name`; `upper_bounds` is used (and must be
  /// ascending) only when the histogram does not exist yet.
  void observe(const std::string& name, std::int64_t v,
               const std::vector<std::int64_t>& upper_bounds);
  /// Append (x, y) to series `name`.
  void append(const std::string& name, std::int64_t x, double y);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  MetricsSnapshot data_;
};

}  // namespace hypart::obs
