// hypart::obs — self-profiling spans and the per-phase profile collector.
//
// `ScopedSpan` (obs/trace.hpp) records wall time only; `Span` is the
// self-profiler upgrade: wall time + peak-RSS delta + heap-allocation count
// over the span's extent, emitted as one Complete trace event whose args
// carry the extra dimensions (`allocs`, `rss_peak_delta_kb`).  The
// allocation count comes from a thread-local counting hook installed on the
// global operator new (obs/span.cpp), so it needs no allocator replacement
// and costs one thread-local increment per allocation; the RSS figure is
// the process peak (getrusage ru_maxrss), whose *delta* across a span is a
// monotone "this phase grew the footprint by X" attribution.
//
// `Profiler` is a TraceSink that aggregates Complete events per span name:
// call counts, total/max wall time, allocations, RSS growth.  Installing it
// as (or tee-ing it into) the ObsContext trace sink turns the existing
// stage instrumentation into a per-phase profile — `hypart profile`
// renders it as a table, benches embed it in BENCH_*.json.
//
// Everything here obeys the obs design rule: with a null sink, Span does no
// clock/rusage/counter reads at all.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace hypart::obs {

/// Allocations on the calling thread since process start (monotone).
/// Counted by the global operator new replacement in span.cpp.
[[nodiscard]] std::uint64_t thread_alloc_count();

/// Process peak RSS in KiB (ru_maxrss); 0 where unsupported.
[[nodiscard]] std::int64_t peak_rss_kb();

/// RAII self-profiler span: wall-clock duration plus allocation-count and
/// peak-RSS deltas, emitted as a Complete event on destruction.  Fully
/// inert (no clock, no rusage, no counter reads) when `sink` is null.
class Span {
 public:
  Span(TraceSink* sink, std::string name, std::string cat = "pipeline",
       std::uint64_t pid = kPipelinePid, std::uint64_t tid = kPipelineTid, Args args = {});
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach an argument after construction (e.g. a stage's output size).
  void arg(std::string key, ArgValue value);

 private:
  TraceSink* sink_;
  TraceEvent ev_;
  std::uint64_t allocs_at_start_ = 0;
  std::int64_t rss_at_start_ = 0;
};

/// Aggregated statistics for one span name.
struct PhaseStats {
  std::string cat;
  std::int64_t calls = 0;
  double wall_us = 0.0;          ///< summed durations
  double max_us = 0.0;           ///< longest single call
  std::int64_t allocs = 0;       ///< summed `allocs` args
  std::int64_t rss_peak_delta_kb = 0;  ///< summed `rss_peak_delta_kb` args
};

/// TraceSink that folds Complete events into per-name PhaseStats.  Safe for
/// concurrent emission (one mutex; span emission is rare relative to work).
/// Non-Complete events (instants, counters, metadata) and simulated-clock
/// events (pid != kPipelinePid, whose durations are machine time units, not
/// wall microseconds) are ignored.
class Profiler final : public TraceSink {
 public:
  void event(const TraceEvent& e) override;

  /// Snapshot of the aggregate, name-ordered (deterministic rendering).
  [[nodiscard]] std::map<std::string, PhaseStats> phases() const;
  /// Wall time of the named phase, 0 when never seen.
  [[nodiscard]] double wall_us(const std::string& name) const;
  /// JSON array [{name, cat, calls, wall_us, max_us, allocs,
  /// rss_peak_delta_kb}, ...] in name order.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, PhaseStats> phases_;
};

/// Forwards every event to each of the (non-null) sinks; lets a Profiler
/// observe the same stream a ChromeTraceSink records.
class TeeSink final : public TraceSink {
 public:
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}
  void event(const TraceEvent& e) override {
    for (TraceSink* s : sinks_)
      if (s != nullptr) s->event(e);
  }
  void flush() override {
    for (TraceSink* s : sinks_)
      if (s != nullptr) s->flush();
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace hypart::obs
