// hypart::obs — structured tracing for the pipeline and simulator.
//
// A `TraceSink` receives typed `TraceEvent`s modeled on the Chrome
// trace-event format (https://docs.google.com/document/d/1CvAClvFfyA5R-
// PhYUmn5OOQtYMH4h6I0nSsKchNAySU): spans (`Complete`), instants, counters
// and track metadata, each stamped with a (pid, tid) track and a timestamp.
// Two clock domains share one trace:
//
//   * pid kPipelinePid — real wall-clock microseconds (stage spans,
//     mapping-search progress, runtime workers);
//   * pid kSimPid — *simulated* machine time units from the cost model
//     (one tid per simulated processor, one per physical link).
//
// Instrumentation sites hold a `TraceSink*` that may be null; every helper
// below is null-safe and compiles to a pointer test when tracing is off, so
// the instrumented code paths are free when no sink is installed.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace hypart::obs {

/// Trace track conventions (Chrome trace pid/tid pairs).
inline constexpr std::uint64_t kPipelinePid = 1;  ///< wall-clock microseconds
inline constexpr std::uint64_t kSimPid = 2;       ///< simulated machine time units
inline constexpr std::uint64_t kPipelineTid = 0;  ///< pipeline stage spans
inline constexpr std::uint64_t kMappingTid = 1;   ///< Algorithm 2 search progress
inline constexpr std::uint64_t kRuntimeTidBase = 100;  ///< threaded runtime workers
/// Simulator link tracks live above processor tracks: tid = base + link index.
inline constexpr std::uint64_t kLinkTidBase = 1'000'000;

/// Typed argument value attached to an event.
using ArgValue = std::variant<std::int64_t, double, std::string>;
using Args = std::vector<std::pair<std::string, ArgValue>>;

/// Chrome trace-event phases used by hypart.
enum class Phase : char {
  Complete = 'X',  ///< span with explicit duration
  Instant = 'i',
  Counter = 'C',
  Metadata = 'M',
};

struct TraceEvent {
  std::string name;
  std::string cat;
  Phase phase = Phase::Instant;
  double ts = 0.0;   ///< microseconds (pipeline pid) or simulated units (sim pid)
  double dur = 0.0;  ///< Complete events only
  std::uint64_t pid = kPipelinePid;
  std::uint64_t tid = 0;
  Args args;
};

/// Abstract event consumer.  Implementations must be safe to call from
/// multiple threads (the library itself only emits from one thread at a
/// time, but user code may not).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void event(const TraceEvent& e) = 0;
  virtual void flush() {}
};

/// Discards everything; useful to assert the instrumented paths are no-ops.
class NullSink final : public TraceSink {
 public:
  void event(const TraceEvent&) override {}
};

/// One JSON object per line per event (machine-tailable stream).  Emission
/// is serialized by an internal mutex, so concurrent producers interleave
/// whole lines, never bytes.
class JsonlSink final : public TraceSink {
 public:
  void event(const TraceEvent& e) override;
  void flush() override {}

  /// Copy of the buffer (a reference would race with concurrent emitters).
  [[nodiscard]] std::string str() const;

 private:
  mutable std::mutex mutex_;
  std::string out_;
};

/// Buffers events and renders the Chrome/Perfetto trace JSON
/// (`{"traceEvents": [...]}`) on demand.  Load the output at
/// https://ui.perfetto.dev or chrome://tracing.  Thread-safe emission.
class ChromeTraceSink final : public TraceSink {
 public:
  void event(const TraceEvent& e) override;

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::string str() const;
  /// Write `str()` to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// Render one event as a Chrome trace-event JSON object (no trailing
/// newline).  Shared by JsonlSink and ChromeTraceSink.
[[nodiscard]] std::string event_to_json(const TraceEvent& e);

/// Monotonic wall clock in microseconds since the first call in-process.
[[nodiscard]] double wall_clock_us();

// ---- null-safe emission helpers -------------------------------------------

void emit_complete(TraceSink* sink, std::string name, std::string cat, double ts, double dur,
                   std::uint64_t pid, std::uint64_t tid, Args args = {});
void emit_instant(TraceSink* sink, std::string name, std::string cat, double ts,
                  std::uint64_t pid, std::uint64_t tid, Args args = {});
void emit_counter(TraceSink* sink, std::string name, double ts, std::uint64_t pid,
                  double value);
void emit_process_name(TraceSink* sink, std::uint64_t pid, std::string name);
void emit_thread_name(TraceSink* sink, std::uint64_t pid, std::uint64_t tid, std::string name);

/// RAII wall-clock span: records start on construction, emits one Complete
/// event on destruction.  No-op (no clock read) when `sink` is null.
class ScopedSpan {
 public:
  ScopedSpan(TraceSink* sink, std::string name, std::string cat,
             std::uint64_t pid = kPipelinePid, std::uint64_t tid = kPipelineTid, Args args = {});
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach an argument after construction (e.g. a stage's output size).
  void arg(std::string key, ArgValue value);

 private:
  TraceSink* sink_;
  TraceEvent ev_;
};

}  // namespace hypart::obs
