#include "obs/trace.hpp"

#include <chrono>
#include <fstream>

#include "core/json_writer.hpp"

namespace hypart::obs {

double wall_clock_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double, std::micro>(clock::now() - epoch).count();
}

std::string event_to_json(const TraceEvent& e) {
  JsonWriter w;
  w.begin_object();
  w.field("name", e.name);
  if (!e.cat.empty()) w.field("cat", e.cat);
  w.field("ph", std::string(1, static_cast<char>(e.phase)));
  w.field("ts", e.ts);
  if (e.phase == Phase::Complete) w.field("dur", e.dur);
  w.field("pid", static_cast<std::uint64_t>(e.pid));
  w.field("tid", static_cast<std::uint64_t>(e.tid));
  if (e.phase == Phase::Instant) w.field("s", std::string("t"));
  if (!e.args.empty()) {
    w.key("args").begin_object();
    for (const auto& [k, v] : e.args) {
      w.key(k);
      if (const auto* i = std::get_if<std::int64_t>(&v)) w.value(*i);
      else if (const auto* d = std::get_if<double>(&v)) w.value(*d);
      else w.value(std::get<std::string>(v));
    }
    w.end_object();
  }
  w.end_object();
  return w.str();
}

void JsonlSink::event(const TraceEvent& e) {
  std::string line = event_to_json(e);  // serialize outside the lock
  std::lock_guard<std::mutex> lock(mutex_);
  out_ += line;
  out_ += '\n';
}

std::string JsonlSink::str() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return out_;
}

void ChromeTraceSink::event(const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(e);
}

std::size_t ChromeTraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string ChromeTraceSink::str() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i) out += ',';
    out += '\n';
    out += event_to_json(events_[i]);
  }
  out += "\n]}\n";
  return out;
}

bool ChromeTraceSink::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << str();
  return static_cast<bool>(out);
}

void emit_complete(TraceSink* sink, std::string name, std::string cat, double ts, double dur,
                   std::uint64_t pid, std::uint64_t tid, Args args) {
  if (sink == nullptr) return;
  sink->event(TraceEvent{std::move(name), std::move(cat), Phase::Complete, ts, dur, pid, tid,
                         std::move(args)});
}

void emit_instant(TraceSink* sink, std::string name, std::string cat, double ts,
                  std::uint64_t pid, std::uint64_t tid, Args args) {
  if (sink == nullptr) return;
  sink->event(TraceEvent{std::move(name), std::move(cat), Phase::Instant, ts, 0.0, pid, tid,
                         std::move(args)});
}

void emit_counter(TraceSink* sink, std::string name, double ts, std::uint64_t pid,
                  double value) {
  if (sink == nullptr) return;
  sink->event(TraceEvent{std::move(name), "counter", Phase::Counter, ts, 0.0, pid, 0,
                         Args{{"value", value}}});
}

void emit_process_name(TraceSink* sink, std::uint64_t pid, std::string name) {
  if (sink == nullptr) return;
  sink->event(TraceEvent{"process_name", "__metadata", Phase::Metadata, 0.0, 0.0, pid, 0,
                         Args{{"name", std::move(name)}}});
}

void emit_thread_name(TraceSink* sink, std::uint64_t pid, std::uint64_t tid, std::string name) {
  if (sink == nullptr) return;
  sink->event(TraceEvent{"thread_name", "__metadata", Phase::Metadata, 0.0, 0.0, pid, tid,
                         Args{{"name", std::move(name)}}});
}

ScopedSpan::ScopedSpan(TraceSink* sink, std::string name, std::string cat, std::uint64_t pid,
                       std::uint64_t tid, Args args)
    : sink_(sink) {
  if (sink_ == nullptr) return;
  ev_.name = std::move(name);
  ev_.cat = std::move(cat);
  ev_.phase = Phase::Complete;
  ev_.pid = pid;
  ev_.tid = tid;
  ev_.args = std::move(args);
  ev_.ts = wall_clock_us();
}

ScopedSpan::~ScopedSpan() {
  if (sink_ == nullptr) return;
  ev_.dur = wall_clock_us() - ev_.ts;
  sink_->event(ev_);
}

void ScopedSpan::arg(std::string key, ArgValue value) {
  if (sink_ == nullptr) return;
  ev_.args.emplace_back(std::move(key), std::move(value));
}

}  // namespace hypart::obs
