#include "obs/span.hpp"

#include <algorithm>
#include <cstdlib>
#include <new>

#include "core/json_writer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

// ---- allocation counting hook ---------------------------------------------
// Replacing the global operator new with a thread-local counter is the
// cheapest allocation profiler that needs no allocator library: one relaxed
// thread-local increment per allocation, malloc underneath (so ASan/TSan
// interceptors still see every block).  The counter is monotone per thread;
// Span reads it twice and subtracts.

namespace {
thread_local std::uint64_t t_alloc_count = 0;

void* counted_alloc(std::size_t n) {
  ++t_alloc_count;
  if (n == 0) n = 1;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++t_alloc_count;
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++t_alloc_count;
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace hypart::obs {

std::uint64_t thread_alloc_count() { return t_alloc_count; }

std::int64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(ru.ru_maxrss / 1024);  // bytes on macOS
#else
  return static_cast<std::int64_t>(ru.ru_maxrss);  // KiB on Linux
#endif
#else
  return 0;
#endif
}

Span::Span(TraceSink* sink, std::string name, std::string cat, std::uint64_t pid,
           std::uint64_t tid, Args args)
    : sink_(sink) {
  if (sink_ == nullptr) return;
  ev_.name = std::move(name);
  ev_.cat = std::move(cat);
  ev_.phase = Phase::Complete;
  ev_.pid = pid;
  ev_.tid = tid;
  ev_.args = std::move(args);
  allocs_at_start_ = thread_alloc_count();
  rss_at_start_ = peak_rss_kb();
  ev_.ts = wall_clock_us();
}

Span::~Span() {
  if (sink_ == nullptr) return;
  ev_.dur = wall_clock_us() - ev_.ts;
  ev_.args.emplace_back("allocs",
                        static_cast<std::int64_t>(thread_alloc_count() - allocs_at_start_));
  ev_.args.emplace_back("rss_peak_delta_kb", peak_rss_kb() - rss_at_start_);
  sink_->event(ev_);
}

void Span::arg(std::string key, ArgValue value) {
  if (sink_ == nullptr) return;
  ev_.args.emplace_back(std::move(key), std::move(value));
}

void Profiler::event(const TraceEvent& e) {
  // Only wall-clock spans: kSimPid events carry *simulated* machine time
  // units in dur, which must not be averaged into a wall-time profile.
  if (e.phase != Phase::Complete || e.pid != kPipelinePid) return;
  std::int64_t allocs = 0, rss = 0;
  for (const auto& [k, v] : e.args) {
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      if (k == "allocs") allocs = *i;
      else if (k == "rss_peak_delta_kb") rss = *i;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  PhaseStats& s = phases_[e.name];
  if (s.calls == 0) s.cat = e.cat;
  ++s.calls;
  s.wall_us += e.dur;
  s.max_us = std::max(s.max_us, e.dur);
  s.allocs += allocs;
  s.rss_peak_delta_kb += rss;
}

std::map<std::string, PhaseStats> Profiler::phases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phases_;
}

double Profiler::wall_us(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = phases_.find(name);
  return it == phases_.end() ? 0.0 : it->second.wall_us;
}

std::string Profiler::to_json() const {
  std::map<std::string, PhaseStats> snap = phases();
  JsonWriter w;
  w.begin_array();
  for (const auto& [name, s] : snap) {
    w.begin_object();
    w.field("name", name);
    w.field("cat", s.cat);
    w.field("calls", s.calls);
    w.field("wall_us", s.wall_us);
    w.field("max_us", s.max_us);
    w.field("allocs", s.allocs);
    w.field("rss_peak_delta_kb", s.rss_peak_delta_kb);
    w.end_object();
  }
  w.end_array();
  return w.str();
}

}  // namespace hypart::obs
