// hypart::obs — the prediction-accuracy ledger.
//
// The cost model (sim/exec_sim.hpp) *predicts* execution time in symbolic
// machine units; the threaded runtime (exec/parallel_runtime.hpp) *measures*
// it in wall-clock microseconds.  `run_ledger` runs both on the same nest
// and attributes the disagreement per component:
//
//   predicted                     measured (critical worker)
//   ---------                     --------------------------
//   compute  bottleneck           compute   iteration bodies
//   comm     bottleneck           comm      message posting
//   stall    total residual       stall     blocked receives
//   other    migration cost       other     unattributed residual
//
// Units differ (model units vs microseconds), so accuracy is judged on
// *shares*: each side's components are normalized by its own total and the
// per-component share deltas are the error attribution.  A calibration
// factor (measured microseconds per predicted unit) links the scales.  Both
// breakdowns sum to their totals *exactly* by construction — the residual
// component absorbs whatever the named phases do not cover — which is the
// invariant tests/test_ledger.cpp pins.
//
// Rows accumulate across runs in an `AccuracyLedger` (JSON file, schema
// "hypart-ledger-v1"), so regressions in model fidelity are diffable over
// time.  `hypart explain` is the CLI front end.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace hypart::obs {

/// One side's per-component breakdown.  All four components plus `total`
/// are in one unit system (predicted: machine cost units; measured:
/// microseconds); compute + comm + stall + other == total by construction.
struct ComponentBreakdown {
  double compute = 0.0;
  double comm = 0.0;
  double stall = 0.0;
  double other = 0.0;  ///< predicted: migration; measured: unattributed residual
  double total = 0.0;

  [[nodiscard]] double sum() const { return compute + comm + stall + other; }
  /// Fraction of `total` (0 when the total is 0).
  [[nodiscard]] double share(double component) const {
    return total > 0.0 ? component / total : 0.0;
  }
};

/// One workload's predicted-vs-measured record.
struct LedgerRow {
  std::string workload;
  std::int64_t iterations = 0;
  unsigned cube_dim = 0;
  std::string accounting;  ///< CommAccounting name
  /// Which real backend produced the measured side ("threads" or "procs");
  /// rows written before the column existed load as "threads".
  std::string backend = "threads";
  int repeats = 0;

  ComponentBreakdown predicted;  ///< cost-model units
  ComponentBreakdown measured;   ///< microseconds, median-wall repeat
  double measured_min_us = 0.0;  ///< fastest repeat's wall time
  /// Measured microseconds per predicted unit (0 when prediction is 0);
  /// drift in this factor across workloads is itself a model-fidelity
  /// signal (a perfect model calibrates identically everywhere).
  double calibration_us_per_unit = 0.0;

  /// measured share minus predicted share for one component value pair.
  [[nodiscard]] double share_error(double predicted_c, double measured_c) const {
    return measured.share(measured_c) - predicted.share(predicted_c);
  }
  /// Mean absolute share error over the four components.
  [[nodiscard]] double mean_abs_share_error() const;

  [[nodiscard]] std::string to_json() const;
};

struct LedgerOptions {
  /// Runtime repetitions; the median-wall repeat supplies the measured
  /// breakdown (min is recorded alongside).
  int repeats = 3;
  /// Which real backend measures: threads (run_parallel) or supervised OS
  /// processes (run_procs).  Recorded in the row's `backend` column so
  /// prediction error is attributable per backend.
  ExecBackend backend = ExecBackend::Threads;
  /// Hooks passed to both the pipeline and the runtime runs.
  ObsContext obs{};
};

/// Run the simulator prediction and a real execution side by side.
/// Forces SpaceMode::Dense (the runtimes interpret materialized
/// iterations); throws core Error/std exceptions on invalid nests exactly
/// like run_pipeline / run_parallel / run_procs.
LedgerRow run_ledger(const LoopNest& nest, PipelineConfig config,
                     const LedgerOptions& opts = {});

/// Row accumulator with a JSON file round-trip ("hypart-ledger-v1").
class AccuracyLedger {
 public:
  void append(LedgerRow row) { rows_.push_back(std::move(row)); }
  [[nodiscard]] const std::vector<LedgerRow>& rows() const { return rows_; }

  /// Parse `path` and append its rows; false + `error` on I/O or schema
  /// failure.  A missing file is NOT an error here — callers that want
  /// "create if absent" should check existence first (the CLI does).
  bool load(const std::string& path, std::string& error);
  /// Write all rows to `path`; false + `error` on I/O failure.
  bool save(const std::string& path, std::string& error) const;

  [[nodiscard]] std::string to_json() const;
  /// Human-readable table: one row per workload with per-component
  /// predicted/measured shares and their deltas.
  [[nodiscard]] std::string table() const;

 private:
  std::vector<LedgerRow> rows_;
};

}  // namespace hypart::obs
