// hypart::obs — umbrella header and the ObsContext handle threaded through
// the pipeline, simulator, mapper and runtime.
//
// An ObsContext is a pair of optional borrowed pointers; the default
// (both null) disables all instrumentation at the cost of a pointer test.
// Callers own the sink and registry; hypart never allocates or frees them.
#pragma once

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace hypart::obs {

struct ObsContext {
  TraceSink* trace = nullptr;        ///< span/event consumer (nullable)
  MetricsRegistry* metrics = nullptr;  ///< counter/histogram store (nullable)

  [[nodiscard]] bool enabled() const { return trace != nullptr || metrics != nullptr; }
};

}  // namespace hypart::obs
