#include "exec/parallel_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace hypart {

namespace {

struct Message {
  std::size_t sink_vid;  ///< iteration this value unblocks
  std::string array;
  IntVec element;
  double value;
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;

  void post(Message msg) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      queue.push_back(std::move(msg));
    }
    cv.notify_one();
  }
};

struct WriteRecord {
  std::string array;
  IntVec element;
  std::int64_t step;
  double value;
};

IntVec eval_subscripts(const std::vector<AffineExpr>& subs, const IntVec& iteration) {
  IntVec element(subs.size());
  for (std::size_t i = 0; i < subs.size(); ++i) element[i] = subs[i].evaluate(iteration);
  return element;
}

}  // namespace

ParallelRunResult run_parallel(const LoopNest& nest, const ComputationStructure& q,
                               const TimeFunction& tf, const Partition& part,
                               const Mapping& mapping, const DependenceInfo& deps,
                               const InitFn& init, const obs::ObsContext& obs) {
  for (const Statement& s : nest.statements())
    if (!s.is_executable())
      throw std::invalid_argument("run_parallel: statement '" + s.label +
                                  "' has no executable right-hand side");
  require_serializable_updates(nest);
  if (mapping.block_to_proc.size() != part.block_count())
    throw std::invalid_argument("run_parallel: mapping/partition size mismatch");

  const std::size_t nprocs = mapping.processor_count;
  const std::size_t nverts = q.vertices().size();

  // ---- static schedule ------------------------------------------------------
  std::vector<ProcId> vproc(nverts);
  std::vector<std::vector<std::size_t>> my_order(nprocs);  // vids per proc
  for (std::size_t vid = 0; vid < nverts; ++vid) {
    vproc[vid] = mapping.block_to_proc[part.block_of(vid)];
    my_order[vproc[vid]].push_back(vid);
  }
  for (auto& order : my_order)
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      std::int64_t sa = tf.step_of(q.vertices()[a]);
      std::int64_t sb = tf.step_of(q.vertices()[b]);
      if (sa != sb) return sa < sb;
      return q.vertices()[a] < q.vertices()[b];
    });

  // Messages each iteration must receive before it can run.
  std::vector<std::uint32_t> expected(nverts, 0);
  for (std::size_t vid = 0; vid < nverts; ++vid) {
    for (const Dependence& d : deps.dependences) {
      IntVec src = sub(q.vertices()[vid], d.distance);
      auto it = q.vertex_index().find(src);
      if (it == q.vertex_index().end()) continue;
      if (vproc[it->second] != vproc[vid]) ++expected[vid];
    }
  }

  // ---- runtime state --------------------------------------------------------
  std::vector<Mailbox> mailbox(nprocs);
  std::vector<std::vector<WriteRecord>> writes(nprocs);
  std::atomic<std::int64_t> messages_sent{0};
  std::atomic<std::int64_t> halo_loads{0};

  // Per-worker observability slots: each is touched by exactly one thread
  // and read only after join, so no synchronization (and no sink calls from
  // worker threads) is needed.
  std::vector<std::int64_t> proc_messages(nprocs, 0);
  std::vector<std::int64_t> proc_halo(nprocs, 0);
  std::vector<double> span_begin(nprocs, 0.0), span_end(nprocs, 0.0);
  const bool timing = obs.trace != nullptr;

  auto worker = [&](ProcId me) {
    if (timing) span_begin[me] = obs::wall_clock_us();
    ArrayStore local;
    std::unordered_map<std::size_t, std::uint32_t> received;
    auto drain_locked = [&](std::deque<Message>& pending) {
      for (Message& m : pending) {
        local.store(m.array, m.element, m.value);
        ++received[m.sink_vid];
      }
      pending.clear();
    };

    for (std::size_t vid : my_order[me]) {
      // Block until every remote input of this iteration has arrived.
      if (expected[vid] > 0) {
        std::unique_lock<std::mutex> lock(mailbox[me].mutex);
        while (received[vid] < expected[vid]) {
          if (!mailbox[me].queue.empty()) {
            std::deque<Message> pending;
            pending.swap(mailbox[me].queue);
            lock.unlock();
            drain_locked(pending);
            lock.lock();
            continue;
          }
          mailbox[me].cv.wait(lock, [&] { return !mailbox[me].queue.empty(); });
        }
      }

      const IntVec& iter = q.vertices()[vid];
      const std::int64_t step = tf.step_of(iter);
      auto load = [&](const std::string& array, const IntVec& element) {
        std::optional<double> v = local.load(array, element);
        if (v) return *v;
        double h = init(array, element);
        local.store(array, element, h);
        halo_loads.fetch_add(1, std::memory_order_relaxed);
        ++proc_halo[me];
        return h;
      };
      for (const Statement& s : nest.statements()) {
        double value = evaluate(s.rhs, load, iter);
        const ArrayAccess& w = s.accesses.front();
        IntVec element = eval_subscripts(w.subscripts, iter);
        local.store(w.array, element, value);
        writes[me].push_back({w.array, std::move(element), step, value});
      }

      // Forward produced/consumed values along every crossing dependence.
      for (const Dependence& d : deps.dependences) {
        IntVec sink = add(iter, d.distance);
        auto it = q.vertex_index().find(sink);
        if (it == q.vertex_index().end()) continue;
        ProcId target = vproc[it->second];
        if (target == me) continue;
        IntVec element = eval_subscripts(d.source_subscripts, iter);
        std::optional<double> value = local.load(d.array, element);
        if (!value) {
          value = init(d.array, element);
          halo_loads.fetch_add(1, std::memory_order_relaxed);
          ++proc_halo[me];
        }
        mailbox[target].post({it->second, d.array, std::move(element), *value});
        messages_sent.fetch_add(1, std::memory_order_relaxed);
        ++proc_messages[me];
      }
    }
    if (timing) span_end[me] = obs::wall_clock_us();
  };

  std::vector<std::thread> threads;
  threads.reserve(nprocs);
  for (ProcId p = 0; p < nprocs; ++p) threads.emplace_back(worker, p);
  for (std::thread& t : threads) t.join();

  // ---- merge: last write (largest step) wins --------------------------------
  ParallelRunResult result;
  std::unordered_map<std::string,
                     std::unordered_map<IntVec, std::pair<std::int64_t, double>, IntVecHash>>
      merged;
  for (const auto& proc_writes : writes) {
    for (const WriteRecord& w : proc_writes) {
      auto& amap = merged[w.array];
      auto it = amap.find(w.element);
      if (it == amap.end() || it->second.first <= w.step) amap[w.element] = {w.step, w.value};
    }
  }
  for (const auto& [array, values] : merged)
    for (const auto& [element, step_value] : values)
      result.written.store(array, element, step_value.second);
  result.stats.messages_sent = messages_sent.load();
  result.stats.halo_loads = halo_loads.load();
  result.stats.threads = nprocs;
  result.stats.per_proc_messages = proc_messages;

  if (obs.trace != nullptr) {
    for (ProcId p = 0; p < nprocs; ++p) {
      obs::emit_thread_name(obs.trace, obs::kPipelinePid, obs::kRuntimeTidBase + p,
                            "runtime worker " + std::to_string(p));
      obs::emit_complete(obs.trace, "worker", "runtime", span_begin[p],
                         span_end[p] - span_begin[p], obs::kPipelinePid,
                         obs::kRuntimeTidBase + p,
                         {{"messages_sent", proc_messages[p]}, {"halo_loads", proc_halo[p]}});
    }
  }
  if (obs.metrics != nullptr) {
    obs.metrics->add("runtime.messages_sent", result.stats.messages_sent);
    obs.metrics->add("runtime.halo_loads", result.stats.halo_loads);
    obs.metrics->add("runtime.threads", static_cast<std::int64_t>(nprocs));
    for (ProcId p = 0; p < nprocs; ++p)
      obs.metrics->add("runtime.proc." + std::to_string(p) + ".messages_sent",
                       proc_messages[p]);
  }
  return result;
}

}  // namespace hypart
