#include "exec/parallel_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace hypart {

namespace {

struct Message {
  std::size_t sink_vid;  ///< iteration this value unblocks
  std::string array;
  IntVec element;
  double value;
};

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;
  bool closed = false;        ///< set by injected worker death
  std::size_t max_depth = 0;  ///< deepest the queue ever got

  /// Deliver one message; false when the mailbox is closed (owner dead).
  bool post(Message msg) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (closed) return false;
      queue.push_back(std::move(msg));
      max_depth = std::max(max_depth, queue.size());
    }
    cv.notify_one();
    return true;
  }

  [[nodiscard]] std::size_t depth() {
    std::lock_guard<std::mutex> lock(mutex);
    return queue.size();
  }
};

/// First-error-wins abort channel shared by all workers.
struct AbortState {
  enum class Kind { None, Stall, WorkerDeath, Internal };

  std::atomic<bool> flag{false};
  std::mutex mutex;
  Kind kind = Kind::None;
  std::string message;
  std::string diagnostics;

  /// Record the first failure; later calls only see `flag` already set.
  /// Returns true for the caller that won the race.
  bool trigger(Kind k, std::string msg, std::string diag = {}) {
    std::lock_guard<std::mutex> lock(mutex);
    if (kind != Kind::None) return false;
    kind = k;
    message = std::move(msg);
    diagnostics = std::move(diag);
    flag.store(true, std::memory_order_release);
    return true;
  }
};

struct WriteRecord {
  std::string array;
  IntVec element;
  std::int64_t step;
  double value;
};

IntVec eval_subscripts(const std::vector<AffineExpr>& subs, const IntVec& iteration) {
  IntVec element(subs.size());
  for (std::size_t i = 0; i < subs.size(); ++i) element[i] = subs[i].evaluate(iteration);
  return element;
}

constexpr std::int64_t kRunning = -1;
constexpr std::int64_t kDone = -2;

}  // namespace

ParallelRunResult run_parallel(const LoopNest& nest, const ComputationStructure& q,
                               const TimeFunction& tf, const Partition& part,
                               const Mapping& mapping, const DependenceInfo& deps,
                               const ParallelRunOptions& options) {
  for (const Statement& s : nest.statements())
    if (!s.is_executable())
      throw std::invalid_argument("run_parallel: statement '" + s.label +
                                  "' has no executable right-hand side");
  require_serializable_updates(nest);
  if (mapping.block_to_proc.size() != part.block_count())
    throw std::invalid_argument("run_parallel: mapping/partition size mismatch");
  if (options.delivery_attempts < 1)
    throw Error(ErrorKind::Config, "run_parallel: delivery_attempts must be >= 1");

  const std::size_t nprocs = mapping.processor_count;
  const std::size_t nverts = q.vertices().size();
  const InitFn& init = options.init;
  const obs::ObsContext& obs = options.obs;
  for (ProcId d : options.dead_workers)
    if (d >= nprocs)
      throw Error(ErrorKind::Config,
                  "run_parallel: dead worker " + std::to_string(d) + " out of range");

  // ---- static schedule ------------------------------------------------------
  std::vector<ProcId> vproc(nverts);
  std::vector<std::vector<std::size_t>> my_order(nprocs);  // vids per proc
  for (std::size_t vid = 0; vid < nverts; ++vid) {
    vproc[vid] = mapping.block_to_proc[part.block_of(vid)];
    my_order[vproc[vid]].push_back(vid);
  }
  for (auto& order : my_order)
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      std::int64_t sa = tf.step_of(q.vertices()[a]);
      std::int64_t sb = tf.step_of(q.vertices()[b]);
      if (sa != sb) return sa < sb;
      return q.vertices()[a] < q.vertices()[b];
    });

  // Messages each iteration must receive before it can run.
  std::vector<std::uint32_t> expected(nverts, 0);
  for (std::size_t vid = 0; vid < nverts; ++vid) {
    for (const Dependence& d : deps.dependences) {
      IntVec src = sub(q.vertices()[vid], d.distance);
      auto it = q.vertex_index().find(src);
      if (it == q.vertex_index().end()) continue;
      if (vproc[it->second] != vproc[vid]) ++expected[vid];
    }
  }

  // ---- runtime state --------------------------------------------------------
  std::vector<Mailbox> mailbox(nprocs);
  std::vector<std::vector<WriteRecord>> writes(nprocs);
  std::atomic<std::int64_t> messages_sent{0};
  std::atomic<std::int64_t> halo_loads{0};
  AbortState abort;
  const bool watchdog = options.recv_timeout_ms > 0;
  const auto recv_timeout = std::chrono::milliseconds(options.recv_timeout_ms);

  // Per-worker diagnostic state, written by the owner and read (racily but
  // harmlessly) by whichever worker dumps a stall report.
  std::vector<std::atomic<std::int64_t>> blocked_vid(nprocs);
  std::vector<std::atomic<std::int64_t>> outstanding(nprocs);
  for (std::size_t p = 0; p < nprocs; ++p) {
    blocked_vid[p].store(kRunning, std::memory_order_relaxed);
    outstanding[p].store(0, std::memory_order_relaxed);
  }

  auto notify_all_workers = [&] {
    for (Mailbox& mb : mailbox) {
      std::lock_guard<std::mutex> lock(mb.mutex);
      mb.cv.notify_all();
    }
  };

  /// Snapshot every worker's blocked-on state for the stall report.
  auto dump_workers = [&] {
    std::ostringstream os;
    for (ProcId p = 0; p < nprocs; ++p) {
      std::int64_t vid = blocked_vid[p].load(std::memory_order_relaxed);
      os << "  proc " << p << ": ";
      if (vid == kDone) os << "finished";
      else if (vid == kRunning) os << "running";
      else
        os << "blocked on vertex " << vid << " (awaiting "
           << outstanding[p].load(std::memory_order_relaxed) << " message(s))";
      os << ", mailbox depth " << mailbox[p].depth() << "\n";
    }
    return os.str();
  };

  // Per-worker observability slots: each is touched by exactly one thread
  // and read only after join, so no synchronization (and no sink calls from
  // worker threads) is needed.
  std::vector<std::int64_t> proc_messages(nprocs, 0);
  std::vector<std::int64_t> proc_halo(nprocs, 0);
  std::vector<double> span_begin(nprocs, 0.0), span_end(nprocs, 0.0);
  std::vector<double> proc_compute_us(nprocs, 0.0);
  std::vector<double> proc_wait_us(nprocs, 0.0);
  std::vector<double> proc_send_us(nprocs, 0.0);
  const bool measure = options.measure_phases;
  const bool timing = obs.trace != nullptr || measure;

  obs::Span run_span(obs.trace, "run_parallel", "runtime", obs::kPipelinePid, obs::kPipelineTid,
                     {{"threads", static_cast<std::int64_t>(nprocs)}});

  // Injected death: a dead worker's mailbox is closed *before* any thread
  // starts, so no send can slip a message in during worker startup — the
  // first delivery attempt already sees the closed box deterministically.
  for (ProcId d : options.dead_workers) mailbox[d].closed = true;

  auto worker = [&](ProcId me, bool dead) {
    if (timing) span_begin[me] = obs::wall_clock_us();
    if (dead) {
      // Executes nothing; senders hit the closed box and abort the run.
      blocked_vid[me].store(kDone, std::memory_order_relaxed);
      if (timing) span_end[me] = obs::wall_clock_us();
      return;
    }

    ArrayStore local;
    std::unordered_map<std::size_t, std::uint32_t> received;
    auto drain = [&](std::deque<Message>& pending) {
      for (Message& m : pending) {
        local.store(m.array, m.element, m.value);
        ++received[m.sink_vid];
      }
      pending.clear();
    };

    // Phase clocks (measure_phases): accumulate how long this worker spent
    // blocked on receives, computing iteration bodies, and posting sends.
    // Each phase costs two steady_clock reads; off the measured path the
    // lambda bodies never run.
    using phase_clock = std::chrono::steady_clock;
    auto phase_us = [](phase_clock::time_point a, phase_clock::time_point b) {
      return std::chrono::duration<double, std::micro>(b - a).count();
    };

    for (std::size_t vid : my_order[me]) {
      // Block until every remote input of this iteration has arrived.  The
      // watchdog deadline restarts whenever progress (any delivery) is
      // made; expiring with nothing delivered means the schedule is stuck.
      if (expected[vid] > 0) {
        phase_clock::time_point w0;
        if (measure) w0 = phase_clock::now();
        blocked_vid[me].store(static_cast<std::int64_t>(vid), std::memory_order_relaxed);
        std::unique_lock<std::mutex> lock(mailbox[me].mutex);
        auto deadline = std::chrono::steady_clock::now() + recv_timeout;
        while (received[vid] < expected[vid]) {
          outstanding[me].store(expected[vid] - received[vid], std::memory_order_relaxed);
          if (abort.flag.load(std::memory_order_acquire)) return;
          if (!mailbox[me].queue.empty()) {
            std::deque<Message> pending;
            pending.swap(mailbox[me].queue);
            lock.unlock();
            drain(pending);
            lock.lock();
            deadline = std::chrono::steady_clock::now() + recv_timeout;
            continue;
          }
          auto wakeup = [&] {
            return !mailbox[me].queue.empty() || abort.flag.load(std::memory_order_acquire);
          };
          if (!watchdog) {
            mailbox[me].cv.wait(lock, wakeup);
          } else if (!mailbox[me].cv.wait_until(lock, deadline, wakeup)) {
            // Timed out with no delivery: declare a stall.
            lock.unlock();
            abort.trigger(AbortState::Kind::Stall,
                          "run_parallel: stall watchdog fired after " +
                              std::to_string(options.recv_timeout_ms) + " ms (proc " +
                              std::to_string(me) + " blocked on vertex " +
                              std::to_string(vid) + ")",
                          dump_workers());
            notify_all_workers();
            return;
          }
        }
        blocked_vid[me].store(kRunning, std::memory_order_relaxed);
        outstanding[me].store(0, std::memory_order_relaxed);
        if (measure) proc_wait_us[me] += phase_us(w0, phase_clock::now());
      }

      phase_clock::time_point c0;
      if (measure) c0 = phase_clock::now();
      const IntVec& iter = q.vertices()[vid];
      const std::int64_t step = tf.step_of(iter);
      auto load = [&](const std::string& array, const IntVec& element) {
        std::optional<double> v = local.load(array, element);
        if (v) return *v;
        double h = init(array, element);
        local.store(array, element, h);
        halo_loads.fetch_add(1, std::memory_order_relaxed);
        ++proc_halo[me];
        return h;
      };
      for (const Statement& s : nest.statements()) {
        double value = evaluate(s.rhs, load, iter);
        const ArrayAccess& w = s.accesses.front();
        IntVec element = eval_subscripts(w.subscripts, iter);
        local.store(w.array, element, value);
        writes[me].push_back({w.array, std::move(element), step, value});
      }
      if (measure) {
        phase_clock::time_point now = phase_clock::now();
        proc_compute_us[me] += phase_us(c0, now);
        c0 = now;  // reuse as the send-phase start
      }

      // Forward produced/consumed values along every crossing dependence.
      for (const Dependence& d : deps.dependences) {
        IntVec sink = add(iter, d.distance);
        auto it = q.vertex_index().find(sink);
        if (it == q.vertex_index().end()) continue;
        ProcId target = vproc[it->second];
        if (target == me) continue;
        IntVec element = eval_subscripts(d.source_subscripts, iter);
        std::optional<double> value = local.load(d.array, element);
        if (!value) {
          value = init(d.array, element);
          halo_loads.fetch_add(1, std::memory_order_relaxed);
          ++proc_halo[me];
        }
        // Deliver with capped backoff: a closed mailbox (dead worker) stays
        // closed, so after the attempts give up the run aborts typed.
        bool delivered = false;
        for (int attempt = 0; attempt < options.delivery_attempts; ++attempt) {
          if (attempt > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(std::min(8, 1 << (attempt - 1))));
          if (abort.flag.load(std::memory_order_acquire)) return;
          if (mailbox[target].post({it->second, d.array, element, *value})) {
            delivered = true;
            break;
          }
        }
        if (!delivered) {
          abort.trigger(AbortState::Kind::WorkerDeath,
                        "run_parallel: delivery to dead worker " + std::to_string(target) +
                            " failed after " + std::to_string(options.delivery_attempts) +
                            " attempts (sender proc " + std::to_string(me) + ", vertex " +
                            std::to_string(vid) + ")");
          notify_all_workers();
          return;
        }
        messages_sent.fetch_add(1, std::memory_order_relaxed);
        ++proc_messages[me];
      }
      if (measure) proc_send_us[me] += phase_us(c0, phase_clock::now());
    }
    blocked_vid[me].store(kDone, std::memory_order_relaxed);
    if (timing) span_end[me] = obs::wall_clock_us();
  };

  auto is_dead = [&](ProcId p) {
    return std::find(options.dead_workers.begin(), options.dead_workers.end(), p) !=
           options.dead_workers.end();
  };
  std::vector<std::thread> threads;
  threads.reserve(nprocs);
  for (ProcId p = 0; p < nprocs; ++p)
    threads.emplace_back([&, p] {
      try {
        worker(p, is_dead(p));
      } catch (const std::exception& e) {
        abort.trigger(AbortState::Kind::Internal,
                      "run_parallel: worker " + std::to_string(p) + " threw: " + e.what());
        notify_all_workers();
      }
    });
  for (std::thread& t : threads) t.join();

  std::int64_t max_depth = 0;
  for (Mailbox& mb : mailbox)
    max_depth = std::max(max_depth, static_cast<std::int64_t>(mb.max_depth));

  if (abort.flag.load(std::memory_order_acquire)) {
    // Surface the failure through obs before throwing so even failed runs
    // leave a diagnosable record.
    if (obs.metrics != nullptr) {
      if (abort.kind == AbortState::Kind::Stall) obs.metrics->add("fault.stalls_detected");
      if (abort.kind == AbortState::Kind::WorkerDeath)
        obs.metrics->add("fault.worker_deaths");
      obs.metrics->set_gauge("runtime.max_mailbox_depth", static_cast<double>(max_depth));
    }
    if (obs.trace != nullptr)
      obs::emit_instant(obs.trace, "abort", "runtime", obs::wall_clock_us(), obs::kPipelinePid,
                        obs::kPipelineTid, {{"reason", abort.message}});
    switch (abort.kind) {
      case AbortState::Kind::Stall: throw StallError(abort.message, abort.diagnostics);
      case AbortState::Kind::WorkerDeath: throw WorkerDeathError(abort.message);
      default: throw Error(ErrorKind::Internal, abort.message);
    }
  }

  // ---- merge: last write (largest step) wins --------------------------------
  ParallelRunResult result;
  std::unordered_map<std::string,
                     std::unordered_map<IntVec, std::pair<std::int64_t, double>, IntVecHash>>
      merged;
  for (const auto& proc_writes : writes) {
    for (const WriteRecord& w : proc_writes) {
      auto& amap = merged[w.array];
      auto it = amap.find(w.element);
      if (it == amap.end() || it->second.first <= w.step) amap[w.element] = {w.step, w.value};
    }
  }
  for (const auto& [array, values] : merged)
    for (const auto& [element, step_value] : values)
      result.written.store(array, element, step_value.second);
  result.stats.messages_sent = messages_sent.load();
  result.stats.halo_loads = halo_loads.load();
  result.stats.threads = nprocs;
  result.stats.per_proc_messages = proc_messages;
  result.stats.max_mailbox_depth = max_depth;
  if (measure) {
    result.stats.per_proc_compute_us = proc_compute_us;
    result.stats.per_proc_wait_us = proc_wait_us;
    result.stats.per_proc_send_us = proc_send_us;
    for (ProcId p = 0; p < nprocs; ++p)
      result.stats.wall_us = std::max(result.stats.wall_us, span_end[p] - span_begin[p]);
  }

  if (obs.trace != nullptr) {
    for (ProcId p = 0; p < nprocs; ++p) {
      obs::emit_thread_name(obs.trace, obs::kPipelinePid, obs::kRuntimeTidBase + p,
                            "runtime worker " + std::to_string(p));
      obs::emit_complete(obs.trace, "worker", "runtime", span_begin[p],
                         span_end[p] - span_begin[p], obs::kPipelinePid,
                         obs::kRuntimeTidBase + p,
                         {{"messages_sent", proc_messages[p]}, {"halo_loads", proc_halo[p]}});
    }
  }
  if (obs.metrics != nullptr) {
    obs.metrics->add("runtime.messages_sent", result.stats.messages_sent);
    obs.metrics->add("runtime.halo_loads", result.stats.halo_loads);
    obs.metrics->add("runtime.threads", static_cast<std::int64_t>(nprocs));
    obs.metrics->set_gauge("runtime.max_mailbox_depth", static_cast<double>(max_depth));
    for (ProcId p = 0; p < nprocs; ++p)
      obs.metrics->add("runtime.proc." + std::to_string(p) + ".messages_sent",
                       proc_messages[p]);
  }
  return result;
}

ParallelRunResult run_parallel(const LoopNest& nest, const ComputationStructure& q,
                               const TimeFunction& tf, const Partition& part,
                               const Mapping& mapping, const DependenceInfo& deps,
                               const InitFn& init, const obs::ObsContext& obs) {
  ParallelRunOptions options;
  options.init = init;
  options.obs = obs;
  return run_parallel(nest, q, tf, part, mapping, deps, options);
}

}  // namespace hypart
