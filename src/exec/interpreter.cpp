#include "exec/interpreter.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "loop/index_set.hpp"
#include "numeric/rat_matrix.hpp"

namespace hypart {

void ArrayStore::store(const std::string& array, const IntVec& element, double value) {
  arrays[array][element] = value;
}

std::optional<double> ArrayStore::load(const std::string& array, const IntVec& element) const {
  auto it = arrays.find(array);
  if (it == arrays.end()) return std::nullopt;
  auto jt = it->second.find(element);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

std::size_t ArrayStore::total_elements() const {
  std::size_t n = 0;
  for (const auto& [name, values] : arrays) n += values.size();
  return n;
}

double default_init(const std::string& array, const IntVec& element) {
  // Deterministic and distinct per array and element; small magnitudes to
  // keep floating-point comparisons stable across summation orders.
  std::size_t h = std::hash<std::string>{}(array);
  for (std::int64_t x : element)
    h ^= static_cast<std::size_t>(x) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return 0.25 + static_cast<double>(h % 1024) / 4096.0;
}

namespace {

void require_executable(const LoopNest& nest) {
  for (const Statement& s : nest.statements())
    if (!s.is_executable())
      throw std::invalid_argument("interpreter: statement '" + s.label +
                                  "' has no executable right-hand side (use "
                                  "LoopNestBuilder::assign)");
}

}  // namespace

void require_serializable_updates(const LoopNest& nest) {
  // Distributed execution relies on every element's updates forming a
  // single dependence-ordered chain.  A write access whose nullspace has
  // dimension >= 2 (e.g. y[i,j] inside a 4-deep nest) updates one element
  // from a whole sub-lattice of iterations; the hyperplane schedule then
  // runs some of those updates concurrently and the chain model would lose
  // updates.  Refuse rather than silently compute something else.
  for (const Statement& s : nest.statements()) {
    const ArrayAccess& w = s.accesses.front();
    if (w.kind != AccessKind::Write) continue;
    RatMat f = RatMat::from_int(w.access_matrix(nest.depth()));
    if (f.nullspace().size() >= 2)
      throw std::invalid_argument(
          "interpreter: statement '" + s.label + "' updates array '" + w.array +
          "' along a reduction lattice of dimension >= 2; the hyperplane schedule "
          "cannot serialize those updates (restructure the reduction into a chain)");
  }
}

namespace {

IntVec eval_subscripts(const std::vector<AffineExpr>& subs, const IntVec& iteration) {
  IntVec element(subs.size());
  for (std::size_t i = 0; i < subs.size(); ++i) element[i] = subs[i].evaluate(iteration);
  return element;
}

/// Execute all statements of one iteration against a load/store interface.
template <typename LoadFn, typename StoreFn>
void execute_iteration(const LoopNest& nest, const IntVec& iter, LoadFn&& load, StoreFn&& store) {
  for (const Statement& s : nest.statements()) {
    double value = evaluate(s.rhs, load, iter);
    const ArrayAccess& w = s.accesses.front();  // assign() puts the write first
    store(w.array, eval_subscripts(w.subscripts, iter), value);
  }
}

}  // namespace

ArrayStore run_sequential(const LoopNest& nest, const InitFn& init) {
  require_executable(nest);
  ArrayStore store;
  IndexSet is(nest);
  auto load = [&](const std::string& array, const IntVec& element) {
    std::optional<double> v = store.load(array, element);
    return v ? *v : init(array, element);
  };
  is.for_each([&](const IntVec& iter) {
    execute_iteration(
        nest, iter, load,
        [&](const std::string& array, const IntVec& element, double value) {
          store.store(array, element, value);
        });
  });
  return store;
}

DistributedResult run_distributed(const LoopNest& nest, const ComputationStructure& q,
                                  const TimeFunction& tf, const Partition& part,
                                  const Mapping& mapping, const DependenceInfo& deps,
                                  const InitFn& init) {
  require_executable(nest);
  require_serializable_updates(nest);
  if (mapping.block_to_proc.size() != part.block_count())
    throw std::invalid_argument("run_distributed: mapping/partition size mismatch");
  const std::size_t nprocs = mapping.processor_count;

  DistributedResult result;
  result.stats.per_proc_iterations.assign(nprocs, 0);

  // Processor of every vertex; iterations bucketed by hyperplane step.
  std::vector<ProcId> vproc(q.vertices().size());
  std::map<std::int64_t, std::vector<std::size_t>> by_step;
  for (std::size_t vid = 0; vid < q.vertices().size(); ++vid) {
    vproc[vid] = mapping.block_to_proc[part.block_of(vid)];
    by_step[tf.step_of(q.vertices()[vid])].push_back(vid);
  }

  // Private local stores; reads miss to host memory (halo load) and cache.
  std::vector<ArrayStore> local(nprocs);
  // Written-value merge: keep the value of the largest-step writer.
  std::unordered_map<std::string, std::unordered_map<IntVec, std::pair<std::int64_t, double>,
                                                     IntVecHash>>
      written;

  for (const auto& [step, vids] : by_step) {
    ++result.stats.steps;
    for (std::size_t vid : vids) {
      const IntVec& iter = q.vertices()[vid];
      const ProcId p = vproc[vid];
      ++result.stats.per_proc_iterations[p];

      auto load = [&](const std::string& array, const IntVec& element) {
        std::optional<double> v = local[p].load(array, element);
        if (v) return *v;
        double h = init(array, element);
        local[p].store(array, element, h);  // now resident in local memory
        ++result.stats.halo_loads;
        return h;
      };
      execute_iteration(nest, iter, load,
                        [&](const std::string& array, const IntVec& element, double value) {
                          local[p].store(array, element, value);
                          auto& amap = written[array];
                          auto it = amap.find(element);
                          if (it == amap.end() || it->second.first <= step)
                            amap[element] = {step, value};
                        });

      // Forward values along every analyzed dependence whose sink iteration
      // lives on another processor (this is exactly the communication the
      // partitioning counts as interblock).
      for (const Dependence& dep : deps.dependences) {
        IntVec sink = add(iter, dep.distance);
        auto sink_it = q.vertex_index().find(sink);
        if (sink_it == q.vertex_index().end()) continue;
        ProcId pq = vproc[sink_it->second];
        if (pq == p) continue;
        IntVec element = eval_subscripts(dep.source_subscripts, iter);
        std::optional<double> value = local[p].load(dep.array, element);
        if (!value) {
          // Source never touched this element locally (possible only for
          // reuse chains whose access pattern skipped it); ship host data.
          value = init(dep.array, element);
          ++result.stats.halo_loads;
        }
        local[pq].store(dep.array, element, *value);
        ++result.stats.value_messages;
      }
    }
  }

  for (const auto& [array, values] : written)
    for (const auto& [element, step_value] : values)
      result.written.store(array, element, step_value.second);
  return result;
}

EquivalenceReport compare_stores(const ArrayStore& expected, const ArrayStore& actual,
                                 double tolerance) {
  EquivalenceReport rep;
  rep.equal = true;
  for (const auto& [array, values] : expected.arrays) {
    for (const auto& [element, value] : values) {
      ++rep.compared;
      std::optional<double> got = actual.load(array, element);
      if (!got || std::abs(*got - value) > tolerance) {
        rep.equal = false;
        if (rep.first_mismatch.empty()) {
          std::ostringstream os;
          os << array << to_string(element) << ": expected " << value << ", got "
             << (got ? std::to_string(*got) : std::string("<missing>"));
          rep.first_mismatch = os.str();
        }
      }
    }
  }
  // Extra written elements in `actual` are also mismatches.
  for (const auto& [array, values] : actual.arrays) {
    auto it = expected.arrays.find(array);
    for (const auto& [element, value] : values) {
      (void)value;
      if (it == expected.arrays.end() || !it->second.contains(element)) {
        rep.equal = false;
        if (rep.first_mismatch.empty())
          rep.first_mismatch = array + to_string(element) + ": unexpected write";
      }
    }
  }
  return rep;
}

}  // namespace hypart
