// hypart — value-level interpreters: sequential and distributed execution.
//
// The cost simulator (sim/exec_sim.hpp) prices a partitioned, mapped loop;
// these interpreters actually *run* it.  The distributed interpreter gives
// every processor a private local store, executes iterations step by step
// in hyperplane order, and forwards produced values along the dependence
// vectors exactly where Algorithm 1's analysis says communication happens.
// Agreement with the sequential interpreter is the strongest form of the
// paper's Theorem 1: the partition and mapping preserve program semantics,
// not just the schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/comp_structure.hpp"
#include "loop/dependence.hpp"
#include "loop/expr.hpp"
#include "loop/loop_nest.hpp"
#include "mapping/tig.hpp"
#include "partition/blocks.hpp"

namespace hypart {

/// Values of one array, keyed by element index.
using ValueMap = std::unordered_map<IntVec, double, IntVecHash>;

/// Written values of all arrays.
struct ArrayStore {
  std::unordered_map<std::string, ValueMap> arrays;

  void store(const std::string& array, const IntVec& element, double value);
  /// nullopt if the element was never written.
  [[nodiscard]] std::optional<double> load(const std::string& array, const IntVec& element) const;
  [[nodiscard]] std::size_t total_elements() const;
};

/// Initial array contents ("host memory"): value of any element not yet
/// written.  Must be a pure function.
using InitFn = std::function<double(const std::string& array, const IntVec& element)>;

/// A deterministic, array- and index-dependent initial value; keeps tests
/// sensitive to element mix-ups.
double default_init(const std::string& array, const IntVec& element);

/// Execute the nest in source (lexicographic) order.  Requires every
/// statement to be executable (built with LoopNestBuilder::assign).
ArrayStore run_sequential(const LoopNest& nest, const InitFn& init = default_init);

struct DistributedStats {
  std::int64_t value_messages = 0;  ///< values forwarded between processors
  std::int64_t halo_loads = 0;      ///< initial-data loads into local stores
  std::int64_t steps = 0;           ///< hyperplane steps executed
  std::vector<std::int64_t> per_proc_iterations;
};

struct DistributedResult {
  ArrayStore written;  ///< merged written values (last write in step order wins)
  DistributedStats stats;
};

/// Rejects nests whose element updates do not form single dependence-
/// ordered chains (write-access nullspace of dimension >= 2): the
/// hyperplane schedule cannot serialize such reductions, so distributed
/// execution would lose updates.  Called by both distributed executors.
void require_serializable_updates(const LoopNest& nest);

/// Execute the partitioned, mapped nest under message-passing semantics.
/// Every processor sees only its local store; produced values are forwarded
/// along the analyzed dependences to the processors of the dependent
/// iterations.  Throws if statements are not executable or updates are not
/// serializable (see require_serializable_updates).
DistributedResult run_distributed(const LoopNest& nest, const ComputationStructure& q,
                                  const TimeFunction& tf, const Partition& part,
                                  const Mapping& mapping, const DependenceInfo& deps,
                                  const InitFn& init = default_init);

struct EquivalenceReport {
  bool equal = false;
  std::size_t compared = 0;
  std::string first_mismatch;  ///< empty when equal
};

/// Element-wise comparison of written values (absolute tolerance).
EquivalenceReport compare_stores(const ArrayStore& expected, const ArrayStore& actual,
                                 double tolerance = 1e-9);

}  // namespace hypart
