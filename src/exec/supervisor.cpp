#include "exec/supervisor.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/error.hpp"
#include "core/io_util.hpp"

namespace hypart::exec {

namespace {

bool is_resource_errno(int err) {
  return err == EAGAIN || err == EMFILE || err == ENFILE || err == ENOMEM;
}

void set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Append one encoded frame (length prefix + type + payload) to `out`.
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  const std::uint32_t len = static_cast<std::uint32_t>(1 + frame.payload.size());
  out.push_back(static_cast<std::uint8_t>(len & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xff));
  out.push_back(static_cast<std::uint8_t>(frame.type));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

/// Try to cut one complete frame off the front of `buf`.  Returns 1 when a
/// frame was extracted, 0 when more bytes are needed, -1 when the length
/// prefix is insane (corrupt stream).
int extract_frame(std::vector<std::uint8_t>& buf, Frame& frame) {
  if (buf.size() < 4) return 0;
  const std::uint32_t len = static_cast<std::uint32_t>(buf[0]) |
                            (static_cast<std::uint32_t>(buf[1]) << 8) |
                            (static_cast<std::uint32_t>(buf[2]) << 16) |
                            (static_cast<std::uint32_t>(buf[3]) << 24);
  if (len == 0 || len > kMaxFrameBytes) return -1;
  if (buf.size() < 4u + len) return 0;
  frame.type = static_cast<FrameType>(buf[4]);
  frame.payload.assign(buf.begin() + 5, buf.begin() + 4 + len);
  buf.erase(buf.begin(), buf.begin() + 4 + len);
  return 1;
}

}  // namespace

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::Hello: return "hello";
    case FrameType::Heartbeat: return "heartbeat";
    case FrameType::Data: return "data";
    case FrameType::Writes: return "writes";
    case FrameType::Stats: return "stats";
    case FrameType::Done: return "done";
    case FrameType::Error: return "error";
  }
  return "?";
}

const char* to_string(SupervisorEventKind kind) {
  switch (kind) {
    case SupervisorEventKind::Spawn: return "spawn";
    case SupervisorEventKind::HeartbeatMiss: return "heartbeat_miss";
    case SupervisorEventKind::Kill: return "kill";
    case SupervisorEventKind::Retry: return "retry";
    case SupervisorEventKind::Reassign: return "reassign";
    case SupervisorEventKind::Degrade: return "degrade";
    case SupervisorEventKind::WorkerExit: return "worker_exit";
  }
  return "?";
}

// ---- payload serialization ------------------------------------------------

void PayloadWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void PayloadWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void PayloadWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void PayloadWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void PayloadWriter::ivec(const std::vector<std::int64_t>& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  for (std::int64_t x : v) i64(x);
}

void PayloadReader::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n)
    throw Error(ErrorKind::Internal, "frame payload truncated: need " + std::to_string(n) +
                                         " byte(s) at offset " + std::to_string(pos_) +
                                         " of " + std::to_string(bytes_.size()));
}

std::uint8_t PayloadReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint32_t PayloadReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t PayloadReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
  return v;
}

double PayloadReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string PayloadReader::str() {
  std::uint32_t n = u32();
  need(n);
  std::string s(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

std::vector<std::int64_t> PayloadReader::ivec() {
  std::uint32_t n = u32();
  std::vector<std::int64_t> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = i64();
  return v;
}

// ---- worker-side blocking I/O ---------------------------------------------

bool write_frame(int fd, const Frame& frame, int* retries_out) {
  std::vector<std::uint8_t> wire;
  wire.reserve(5 + frame.payload.size());
  encode_frame(frame, wire);
  return write_full(fd, wire.data(), wire.size(), /*max_retries=*/16, retries_out);
}

int read_frame(int fd, Frame& frame) {
  std::uint8_t head[4];
  ssize_t r = read_full(fd, head, 4);
  if (r == 0) return 0;   // clean EOF at a frame boundary
  if (r != 4) return -1;  // error or EOF mid-prefix
  const std::uint32_t len = static_cast<std::uint32_t>(head[0]) |
                            (static_cast<std::uint32_t>(head[1]) << 8) |
                            (static_cast<std::uint32_t>(head[2]) << 16) |
                            (static_cast<std::uint32_t>(head[3]) << 24);
  if (len == 0 || len > kMaxFrameBytes) return -1;
  std::vector<std::uint8_t> body(len);
  r = read_full(fd, body.data(), len);
  if (r != static_cast<ssize_t>(len)) return -1;  // truncated mid-frame
  frame.type = static_cast<FrameType>(body[0]);
  frame.payload.assign(body.begin() + 1, body.end());
  return 1;
}

int wait_readable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0 && errno == EINTR) continue;
    if (r < 0) return -1;
    if (r == 0) return 0;
    return 1;
  }
}

// ---- Supervisor -----------------------------------------------------------

double Supervisor::now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Supervisor::~Supervisor() {
  kill_all();
  for (auto& [proc, w] : workers_) {
    (void)proc;
    close_fd(w);
    reap(w, /*block=*/true);
  }
}

void Supervisor::emit(SupervisorEventKind kind, ProcId proc, std::string detail) {
  if (options_.on_event) options_.on_event({kind, proc, std::move(detail)});
}

bool Supervisor::spawn(const std::vector<ProcId>& procs,
                       const std::function<void(ProcId, int)>& body, std::string* error) {
  ignore_sigpipe();
  auto fail_resource = [&](const char* what, int err) {
    if (error != nullptr)
      *error = std::string(what) + " failed: " + std::strerror(err) +
               " (resource exhaustion; degrading)";
    // Unwind whatever this call already spawned so the caller can fall
    // back with no leaked children or fds.
    reset();
    return false;
  };

  for (ProcId proc : procs) {
    if (workers_.contains(proc))
      throw Error(ErrorKind::Internal,
                  "Supervisor::spawn: worker " + std::to_string(proc) + " already exists");
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      if (is_resource_errno(errno)) return fail_resource("socketpair", errno);
      throw Error(ErrorKind::Io,
                  "Supervisor::spawn: socketpair failed: " + std::string(std::strerror(errno)));
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      int err = errno;
      ::close(sv[0]);
      ::close(sv[1]);
      if (is_resource_errno(err)) return fail_resource("fork", err);
      throw Error(ErrorKind::Io,
                  "Supervisor::spawn: fork failed: " + std::string(std::strerror(err)));
    }
    if (pid == 0) {
      // Child: keep only our end, blocking, and run the worker body.  The
      // body never returns; _exit (not exit) so no parent-owned state
      // (atexit handlers, stream buffers) runs twice.
      ::close(sv[0]);
      body(proc, sv[1]);
      _exit(0);
    }
    ::close(sv[1]);
    set_nonblocking(sv[0]);
    WorkerState w;
    w.pid = pid;
    w.fd = sv[0];
    w.last_frame_ms = now_ms();
    workers_.emplace(proc, std::move(w));
    emit(SupervisorEventKind::Spawn, proc, "pid " + std::to_string(pid));
  }
  return true;
}

void Supervisor::close_fd(WorkerState& w) {
  if (w.fd >= 0) {
    ::close(w.fd);
    w.fd = -1;
  }
}

void Supervisor::reap(WorkerState& w, bool block) {
  if (w.pid < 0 || w.reaped) return;
  int status = 0;
  pid_t r = ::waitpid(w.pid, &status, block ? 0 : WNOHANG);
  if (r == w.pid || (r < 0 && errno == ECHILD)) w.reaped = true;
}

void Supervisor::flush_out(WorkerState& w, ProcId proc) {
  while (!w.outbuf.empty() && w.fd >= 0) {
    ssize_t n = ::write(w.fd, w.outbuf.data(), w.outbuf.size());
    if (n > 0) {
      w.outbuf.erase(w.outbuf.begin(), w.outbuf.begin() + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Worker's socket is full; poll_once retries on POLLOUT.  Count it
      // so observability shows backpressure happening.
      ++send_retries_;
      emit(SupervisorEventKind::Retry, proc,
           std::to_string(w.outbuf.size()) + " byte(s) pending");
      return;
    }
    // Hard error (EPIPE: worker gone).  Death is detected on the read
    // side / waitpid; just stop writing.
    w.outbuf.clear();
    return;
  }
}

bool Supervisor::drain_in(WorkerState& w, ProcId proc,
                          std::vector<std::pair<ProcId, Frame>>& frames) {
  std::uint8_t chunk[16384];
  for (;;) {
    ssize_t n = ::read(w.fd, chunk, sizeof(chunk));
    if (n > 0) {
      w.inbuf.insert(w.inbuf.end(), chunk, chunk + n);
      w.last_frame_ms = now_ms();
      Frame f;
      int rc;
      while ((rc = extract_frame(w.inbuf, f)) == 1) {
        if (f.type == FrameType::Done) w.done = true;
        frames.emplace_back(proc, std::move(f));
        f = Frame{};
      }
      if (rc < 0) return false;  // corrupt length prefix
      continue;
    }
    if (n == 0) return false;  // EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;  // fatal read error (ECONNRESET, ...)
  }
}

void Supervisor::declare_dead(ProcId proc, WorkerState& w, const std::string& reason,
                              std::vector<WorkerDeath>& deaths) {
  if (w.dead) return;
  w.dead = true;
  close_fd(w);
  if (w.pid > 0 && !w.reaped) ::kill(w.pid, SIGKILL);
  reap(w, /*block=*/true);
  if (w.done) {
    emit(SupervisorEventKind::WorkerExit, proc, reason);
    return;  // finished its schedule first: a clean exit, not a death
  }
  deaths.push_back({proc, reason});
}

void Supervisor::poll_once(int timeout_ms, std::vector<std::pair<ProcId, Frame>>& frames,
                           std::vector<WorkerDeath>& deaths) {
  std::vector<pollfd> pfds;
  std::vector<ProcId> pfd_proc;
  for (auto& [proc, w] : workers_) {
    if (w.dead || w.fd < 0) continue;
    pollfd p{};
    p.fd = w.fd;
    p.events = POLLIN;
    if (!w.outbuf.empty()) p.events |= POLLOUT;
    pfds.push_back(p);
    pfd_proc.push_back(proc);
  }
  if (!pfds.empty()) {
    int r = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (r < 0 && errno != EINTR)
      throw Error(ErrorKind::Io, "Supervisor: poll failed: " + std::string(std::strerror(errno)));
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      WorkerState& w = workers_.at(pfd_proc[i]);
      if (w.dead) continue;
      if (pfds[i].revents & POLLOUT) flush_out(w, pfd_proc[i]);
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        if (!drain_in(w, pfd_proc[i], frames)) {
          const char* why = w.inbuf.empty() ? "socket closed" : "truncated frame";
          declare_dead(pfd_proc[i], w, why, deaths);
        }
      }
    }
  }

  const double now = now_ms();
  for (auto& [proc, w] : workers_) {
    if (w.dead) continue;
    // Exit detection via waitpid: catches a child that died without the
    // socket reporting it yet (or whose death raced the poll above).
    if (w.pid > 0 && !w.reaped) {
      int status = 0;
      pid_t r = ::waitpid(w.pid, &status, WNOHANG);
      if (r == w.pid) {
        w.reaped = true;
        if (!w.done) {
          std::string why = WIFSIGNALED(status)
                                ? "killed by signal " + std::to_string(WTERMSIG(status))
                                : "exited with status " +
                                      std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
          // Drain any bytes the worker flushed before dying, then report.
          if (w.fd >= 0) (void)drain_in(w, proc, frames);
          if (w.done) {  // the drained bytes included Done after all
            declare_dead(proc, w, "exited", deaths);
          } else {
            declare_dead(proc, w, why, deaths);
          }
          continue;
        }
        declare_dead(proc, w, "exited", deaths);
        continue;
      }
    }
    // Heartbeat deadline: no frame (not even a heartbeat) for too long
    // means the worker is hung, not merely slow — kill it so recovery can
    // start instead of waiting forever.
    if (options_.heartbeat_timeout_ms > 0 && !w.done &&
        now - w.last_frame_ms > static_cast<double>(options_.heartbeat_timeout_ms)) {
      ++heartbeat_misses_;
      emit(SupervisorEventKind::HeartbeatMiss, proc,
           "no frame for " + std::to_string(options_.heartbeat_timeout_ms) + " ms");
      emit(SupervisorEventKind::Kill, proc, "heartbeat timeout");
      declare_dead(proc, w, "heartbeat timeout", deaths);
    }
  }
}

void Supervisor::send(ProcId proc, const Frame& frame) {
  auto it = workers_.find(proc);
  if (it == workers_.end() || it->second.dead || it->second.fd < 0)
    return;  // destination died; the death event drives recovery instead
  encode_frame(frame, it->second.outbuf);
  flush_out(it->second, proc);
}

void Supervisor::mark_done(ProcId proc) {
  auto it = workers_.find(proc);
  if (it != workers_.end()) it->second.done = true;
}

void Supervisor::kill_worker(ProcId proc, const std::string& reason) {
  auto it = workers_.find(proc);
  if (it == workers_.end() || it->second.dead) return;
  emit(SupervisorEventKind::Kill, proc, reason);
  if (it->second.pid > 0 && !it->second.reaped) ::kill(it->second.pid, SIGKILL);
}

void Supervisor::kill_all() {
  for (auto& [proc, w] : workers_) {
    if (w.dead || w.pid <= 0 || w.reaped) continue;
    emit(SupervisorEventKind::Kill, proc, "kill_all");
    ::kill(w.pid, SIGKILL);
  }
}

void Supervisor::reset() {
  kill_all();
  for (auto& [proc, w] : workers_) {
    (void)proc;
    close_fd(w);
    reap(w, /*block=*/true);
  }
  workers_.clear();
}

bool Supervisor::alive(ProcId proc) const {
  auto it = workers_.find(proc);
  return it != workers_.end() && !it->second.dead;
}

std::size_t Supervisor::live_count() const {
  std::size_t n = 0;
  for (const auto& [proc, w] : workers_) {
    (void)proc;
    if (!w.dead) ++n;
  }
  return n;
}

std::size_t Supervisor::done_count() const {
  std::size_t n = 0;
  for (const auto& [proc, w] : workers_) {
    (void)proc;
    if (w.done) ++n;
  }
  return n;
}

std::string Supervisor::dump_workers() const {
  std::ostringstream os;
  const double now = now_ms();
  for (const auto& [proc, w] : workers_) {
    os << "  worker " << proc << ": ";
    if (w.dead) os << "dead";
    else if (w.done) os << "done";
    else os << "running";
    os << ", outbuf " << w.outbuf.size() << " byte(s), inbuf " << w.inbuf.size()
       << " byte(s), last frame " << static_cast<std::int64_t>(now - w.last_frame_ms)
       << " ms ago\n";
  }
  return os.str();
}

}  // namespace hypart::exec
