// hypart — a real multithreaded message-passing runtime.
//
// The distributed interpreter (exec/interpreter.hpp) executes the mapped
// loop deterministically in a single thread; this runtime actually runs it
// on N concurrent worker threads, one per simulated processor, with
// per-processor mailboxes (mutex + condition variable) and blocking
// receives.  No shared mutable array state exists: a worker only touches
// its own local store and its mailbox, exactly like a node of the paper's
// message-passing machine.  Every value a remote iteration needs is sent as
// a typed message and *waited for*, so a partitioning or mapping bug that
// breaks the schedule shows up as a wrong result or — via the stall
// watchdog — as a typed StallError with a per-worker diagnostic dump,
// never as a silent hang.  Injected worker death (a mailbox closed before
// the run) is surfaced as WorkerDeathError after capped delivery retries.
//
// Results must equal sequential execution; the tests assert this under
// thread-schedule nondeterminism.
#pragma once

#include "core/error.hpp"
#include "exec/interpreter.hpp"
#include "obs/obs.hpp"

namespace hypart {

struct ParallelRunStats {
  std::int64_t messages_sent = 0;
  std::int64_t halo_loads = 0;
  std::size_t threads = 0;
  std::vector<std::int64_t> per_proc_messages;  ///< sends per worker thread
  /// Deepest any mailbox ever got (received-but-undrained messages); a
  /// climbing depth on a proc that never drains is the signature of a
  /// brewing stall — exposed as metric `runtime.max_mailbox_depth` so runs
  /// are diagnosable before the watchdog fires.
  std::int64_t max_mailbox_depth = 0;
  /// Per-worker phase clocks, filled only when
  /// ParallelRunOptions::measure_phases is set: microseconds each worker
  /// spent computing iterations, blocked on receives, and posting sends.
  /// The three phases tile a worker's span up to loop overhead, so the
  /// accuracy ledger (obs/ledger.hpp) can attribute measured time to the
  /// same components the cost model predicts.
  std::vector<double> per_proc_compute_us;
  std::vector<double> per_proc_wait_us;
  std::vector<double> per_proc_send_us;
  /// Longest worker span in microseconds (the measured critical path);
  /// 0 unless measure_phases.
  double wall_us = 0.0;
};

struct ParallelRunResult {
  ArrayStore written;  ///< merged written values (last hyperplane step wins)
  ParallelRunStats stats;
};

struct ParallelRunOptions {
  InitFn init = default_init;
  obs::ObsContext obs{};
  /// Stall watchdog: a worker blocked on a receive for longer than this
  /// without any message arriving aborts the whole run with StallError
  /// (diagnostics: per-worker blocked-on vertex, outstanding message count,
  /// mailbox depth).  0 disables the watchdog (pre-fault behavior: a broken
  /// schedule hangs forever).
  std::int64_t recv_timeout_ms = 30000;
  /// Fault injection: these workers die at startup — their mailbox closes
  /// and they execute nothing.  Message delivery to a closed mailbox is
  /// retried with capped backoff, then the run aborts with WorkerDeathError.
  std::vector<ProcId> dead_workers;
  /// Delivery attempts to a closed mailbox before giving up (>= 1).
  int delivery_attempts = 4;
  /// Record per-worker compute/wait/send phase clocks into
  /// ParallelRunStats (two steady_clock reads per phase per iteration).
  /// Off by default so the fast path stays measurement-free.
  bool measure_phases = false;
};

/// Execute the partitioned, mapped nest on one OS thread per processor.
/// Blocking message passing between threads; throws on non-executable
/// statements or mapping mismatch, StallError when the watchdog fires, and
/// WorkerDeathError when delivery to a dead worker's mailbox gives up.
/// Deterministic result (not timing).  When `obs` carries a trace sink,
/// each worker gets a wall-clock span (pid kPipelinePid, tid
/// kRuntimeTidBase + proc); counters and per-proc send totals land in the
/// registry.  Workers never touch the sink concurrently — timestamps are
/// collected locally and emitted after join.
ParallelRunResult run_parallel(const LoopNest& nest, const ComputationStructure& q,
                               const TimeFunction& tf, const Partition& part,
                               const Mapping& mapping, const DependenceInfo& deps,
                               const ParallelRunOptions& options);

/// Back-compatible overload with default watchdog settings.
ParallelRunResult run_parallel(const LoopNest& nest, const ComputationStructure& q,
                               const TimeFunction& tf, const Partition& part,
                               const Mapping& mapping, const DependenceInfo& deps,
                               const InitFn& init = default_init,
                               const obs::ObsContext& obs = {});

}  // namespace hypart
