// hypart — a real multithreaded message-passing runtime.
//
// The distributed interpreter (exec/interpreter.hpp) executes the mapped
// loop deterministically in a single thread; this runtime actually runs it
// on N concurrent worker threads, one per simulated processor, with
// per-processor mailboxes (mutex + condition variable) and blocking
// receives.  No shared mutable array state exists: a worker only touches
// its own local store and its mailbox, exactly like a node of the paper's
// message-passing machine.  Every value a remote iteration needs is sent as
// a typed message and *waited for*, so a partitioning or mapping bug that
// breaks the schedule shows up as a stall or a wrong result, not silently.
//
// Results must equal sequential execution; the tests assert this under
// thread-schedule nondeterminism.
#pragma once

#include "exec/interpreter.hpp"
#include "obs/obs.hpp"

namespace hypart {

struct ParallelRunStats {
  std::int64_t messages_sent = 0;
  std::int64_t halo_loads = 0;
  std::size_t threads = 0;
  std::vector<std::int64_t> per_proc_messages;  ///< sends per worker thread
};

struct ParallelRunResult {
  ArrayStore written;  ///< merged written values (last hyperplane step wins)
  ParallelRunStats stats;
};

/// Execute the partitioned, mapped nest on one OS thread per processor.
/// Blocking message passing between threads; throws on non-executable
/// statements or mapping mismatch.  Deterministic result (not timing).
/// When `obs` carries a trace sink, each worker gets a wall-clock span
/// (pid kPipelinePid, tid kRuntimeTidBase + proc); counters and per-proc
/// send totals land in the registry.  Workers never touch the sink
/// concurrently — timestamps are collected locally and emitted after join.
ParallelRunResult run_parallel(const LoopNest& nest, const ComputationStructure& q,
                               const TimeFunction& tf, const Partition& part,
                               const Mapping& mapping, const DependenceInfo& deps,
                               const InitFn& init = default_init,
                               const obs::ObsContext& obs = {});

}  // namespace hypart
