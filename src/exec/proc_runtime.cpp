#include "exec/proc_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <random>
#include <unordered_map>

#include <signal.h>
#include <time.h>
#include <unistd.h>

#include "core/io_util.hpp"
#include "exec/parallel_runtime.hpp"
#include "exec/supervisor.hpp"
#include "fault/remap.hpp"

namespace hypart {

namespace {

using exec::Frame;
using exec::FrameType;
using exec::PayloadReader;
using exec::PayloadWriter;
using exec::Supervisor;
using exec::SupervisorEvent;
using exec::SupervisorEventKind;
using exec::WorkerDeath;

struct WriteRecord {
  std::string array;
  IntVec element;
  std::int64_t step;
  double value;
};

struct WorkerStats {
  double compute_us = 0.0;
  double wait_us = 0.0;
  double send_us = 0.0;
  std::int64_t halo_loads = 0;
  std::int64_t send_retries = 0;
};

IntVec eval_subscripts(const std::vector<AffineExpr>& subs, const IntVec& iteration) {
  IntVec element(subs.size());
  for (std::size_t i = 0; i < subs.size(); ++i) element[i] = subs[i].evaluate(iteration);
  return element;
}

void sleep_ms(std::int64_t ms) {
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = (ms % 1000) * 1000000L;
  ::nanosleep(&ts, nullptr);
}

/// The per-epoch static schedule, identical to the threaded runtime's (and
/// to the program codegen/spmd emits): vertex -> proc, per-proc vertex
/// order by (hyperplane step, vertex), and per-vertex expected cross-proc
/// message counts.
struct Schedule {
  std::vector<ProcId> vproc;
  std::vector<std::vector<std::size_t>> my_order;
  std::vector<std::uint32_t> expected;
  std::int64_t min_step = 0;
  std::int64_t max_step = 0;
};

Schedule build_schedule(const ComputationStructure& q, const TimeFunction& tf,
                        const Partition& part, const Mapping& mapping,
                        const DependenceInfo& deps) {
  const std::size_t nverts = q.vertices().size();
  const std::size_t nprocs = mapping.processor_count;
  Schedule s;
  s.vproc.resize(nverts);
  s.my_order.resize(nprocs);
  bool first = true;
  for (std::size_t vid = 0; vid < nverts; ++vid) {
    s.vproc[vid] = mapping.block_to_proc[part.block_of(vid)];
    s.my_order[s.vproc[vid]].push_back(vid);
    std::int64_t step = tf.step_of(q.vertices()[vid]);
    if (first || step < s.min_step) s.min_step = step;
    if (first || step > s.max_step) s.max_step = step;
    first = false;
  }
  for (auto& order : s.my_order)
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      std::int64_t sa = tf.step_of(q.vertices()[a]);
      std::int64_t sb = tf.step_of(q.vertices()[b]);
      if (sa != sb) return sa < sb;
      return q.vertices()[a] < q.vertices()[b];
    });
  s.expected.assign(nverts, 0);
  for (std::size_t vid = 0; vid < nverts; ++vid) {
    for (const Dependence& d : deps.dependences) {
      IntVec src = sub(q.vertices()[vid], d.distance);
      auto it = q.vertex_index().find(src);
      if (it == q.vertex_index().end()) continue;
      if (s.vproc[it->second] != s.vproc[vid]) ++s.expected[vid];
    }
  }
  return s;
}

/// Worker-side fault triggers for one proc, derived from the plan.
struct WorkerFaults {
  std::optional<std::int64_t> kill_at;   // hyperplane step (kFromStart = now)
  std::optional<std::int64_t> hang_at;
  std::optional<std::int64_t> trunc_at;
  std::optional<std::int64_t> delay_at;
  std::int64_t delay_ms = 0;
};

bool triggered(const std::optional<std::int64_t>& at, std::int64_t step) {
  return at.has_value() && (*at == fault::kFromStart || step >= *at);
}

/// The worker body: executes `my_order[me]` of the schedule, receiving
/// forwarded DATA frames and sending one DATA frame per crossing
/// dependence, heartbeating whenever it waits.  Runs in the forked child
/// and never returns.
void worker_main(int fd, ProcId me, const LoopNest& nest, const ComputationStructure& q,
                 const TimeFunction& tf, const DependenceInfo& deps, const InitFn& init,
                 const Schedule& sched, const WorkerFaults& faults,
                 std::int64_t heartbeat_interval_ms, bool measure) {
  using phase_clock = std::chrono::steady_clock;
  auto phase_us = [](phase_clock::time_point a, phase_clock::time_point b) {
    return std::chrono::duration<double, std::micro>(b - a).count();
  };

  WorkerStats stats;
  ArrayStore local;
  std::unordered_map<std::size_t, std::uint32_t> received;
  std::vector<WriteRecord> writes;
  bool delaying = false;
  auto last_hb = phase_clock::now();

  auto send = [&](const Frame& f) {
    int retries = 0;
    if (!exec::write_frame(fd, f, &retries)) _exit(3);  // supervisor gone
    stats.send_retries += retries;
  };
  auto heartbeat_if_due = [&] {
    auto now = phase_clock::now();
    if (std::chrono::duration<double, std::milli>(now - last_hb).count() >=
        static_cast<double>(heartbeat_interval_ms)) {
      send({FrameType::Heartbeat, {}});
      last_hb = now;
    }
  };
  auto fire_faults = [&](std::int64_t step) {
    if (triggered(faults.kill_at, step)) ::raise(SIGKILL);
    if (triggered(faults.trunc_at, step)) {
      // Deliberately corrupt the stream: a length prefix promising more
      // bytes than ever arrive, then die.  The supervisor must classify
      // this as a truncated frame, not hang waiting for the rest.
      const std::uint8_t junk[6] = {0xff, 0x00, 0x00, 0x00,
                                    static_cast<std::uint8_t>(FrameType::Data), 0x42};
      (void)write_full(fd, junk, sizeof(junk));
      _exit(4);
    }
    if (triggered(faults.hang_at, step)) {
      for (;;) sleep_ms(1000);  // silent forever; heartbeat watchdog's case
    }
    if (triggered(faults.delay_at, step)) delaying = true;
  };

  {
    PayloadWriter pw;
    pw.u64(me);
    send({FrameType::Hello, pw.take()});
  }
  fire_faults(sched.min_step - 1);  // kFromStart faults fire before any vertex

  for (std::size_t vid : sched.my_order[me]) {
    const IntVec& iter = q.vertices()[vid];
    const std::int64_t step = tf.step_of(iter);
    fire_faults(step);
    heartbeat_if_due();

    if (sched.expected[vid] > 0) {
      phase_clock::time_point w0;
      if (measure) w0 = phase_clock::now();
      while (received[vid] < sched.expected[vid]) {
        int r = exec::wait_readable(fd, static_cast<int>(heartbeat_interval_ms));
        if (r < 0) _exit(3);
        if (r == 0) {
          send({FrameType::Heartbeat, {}});
          last_hb = phase_clock::now();
          continue;
        }
        Frame f;
        int rc = exec::read_frame(fd, f);
        if (rc <= 0) _exit(3);  // supervisor closed our end: epoch is over
        if (f.type != FrameType::Data) continue;
        PayloadReader pr(f.payload);
        (void)pr.u64();  // routing target (us), already consumed by the hub
        std::size_t sink_vid = static_cast<std::size_t>(pr.u64());
        std::string array = pr.str();
        IntVec element = pr.ivec();
        double value = pr.f64();
        local.store(array, element, value);
        ++received[sink_vid];
      }
      if (measure) stats.wait_us += phase_us(w0, phase_clock::now());
    }

    phase_clock::time_point c0;
    if (measure) c0 = phase_clock::now();
    auto load = [&](const std::string& array, const IntVec& element) {
      std::optional<double> v = local.load(array, element);
      if (v) return *v;
      double h = init(array, element);
      local.store(array, element, h);
      ++stats.halo_loads;
      return h;
    };
    for (const Statement& s : nest.statements()) {
      double value = evaluate(s.rhs, load, iter);
      const ArrayAccess& w = s.accesses.front();
      IntVec element = eval_subscripts(w.subscripts, iter);
      local.store(w.array, element, value);
      writes.push_back({w.array, std::move(element), step, value});
    }
    if (measure) {
      phase_clock::time_point now = phase_clock::now();
      stats.compute_us += phase_us(c0, now);
      c0 = now;
    }

    for (const Dependence& d : deps.dependences) {
      IntVec sink = add(iter, d.distance);
      auto it = q.vertex_index().find(sink);
      if (it == q.vertex_index().end()) continue;
      ProcId target = sched.vproc[it->second];
      if (target == me) continue;
      IntVec element = eval_subscripts(d.source_subscripts, iter);
      std::optional<double> value = local.load(d.array, element);
      if (!value) {
        value = init(d.array, element);
        ++stats.halo_loads;
      }
      if (delaying && faults.delay_ms > 0) sleep_ms(faults.delay_ms);
      PayloadWriter pw;
      pw.u64(target);
      pw.u64(it->second);
      pw.str(d.array);
      pw.ivec(element);
      pw.f64(*value);
      send({FrameType::Data, pw.take()});
    }
    if (measure) stats.send_us += phase_us(c0, phase_clock::now());
  }

  {
    PayloadWriter pw;
    pw.u32(static_cast<std::uint32_t>(writes.size()));
    for (const WriteRecord& w : writes) {
      pw.str(w.array);
      pw.ivec(w.element);
      pw.i64(w.step);
      pw.f64(w.value);
    }
    send({FrameType::Writes, pw.take()});
  }
  {
    PayloadWriter pw;
    pw.f64(stats.compute_us);
    pw.f64(stats.wait_us);
    pw.f64(stats.send_us);
    pw.i64(stats.halo_loads);
    pw.i64(stats.send_retries);
    send({FrameType::Stats, pw.take()});
  }
  send({FrameType::Done, {}});
  _exit(0);
}

[[nodiscard]] bool is_power_of_two(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

[[nodiscard]] unsigned log2_exact(std::size_t n) {
  unsigned d = 0;
  while ((std::size_t{1} << d) < n) ++d;
  return d;
}

}  // namespace

ProcRunResult run_procs(const LoopNest& nest, const ComputationStructure& q,
                        const TimeFunction& tf, const Partition& part,
                        const Mapping& mapping, const DependenceInfo& deps,
                        const ProcRunOptions& options) {
  for (const Statement& s : nest.statements())
    if (!s.is_executable())
      throw std::invalid_argument("run_procs: statement '" + s.label +
                                  "' has no executable right-hand side");
  require_serializable_updates(nest);
  if (mapping.block_to_proc.size() != part.block_count())
    throw std::invalid_argument("run_procs: mapping/partition size mismatch");
  if (options.max_recoveries < 0)
    throw Error(ErrorKind::Config, "run_procs: max_recoveries must be >= 0");
  if (options.heartbeat_interval_ms <= 0)
    throw Error(ErrorKind::Config, "run_procs: heartbeat_interval_ms must be > 0");

  const std::size_t nprocs = mapping.processor_count;
  const obs::ObsContext& obs = options.obs;
  ignore_sigpipe();

  for (const fault::ProcFault& f : options.proc_faults)
    if (f.kind != fault::ProcFaultKind::RandKill && f.proc >= nprocs)
      throw Error(ErrorKind::Config, "run_procs: proc fault targets worker " +
                                         std::to_string(f.proc) + " but only " +
                                         std::to_string(nprocs) + " exist");

  ProcRunResult result;
  ProcRunStats& stats = result.stats;

  auto emit_event = [&](const SupervisorEvent& e) {
    if (obs.trace != nullptr)
      obs::emit_instant(obs.trace, std::string("supervisor.") + exec::to_string(e.kind),
                        "procs", obs::wall_clock_us(), obs::kPipelinePid, obs::kPipelineTid,
                        {{"worker", static_cast<std::int64_t>(e.proc)}, {"detail", e.detail}});
    if (obs.metrics != nullptr)
      obs.metrics->add(std::string("procs.events.") + exec::to_string(e.kind));
  };

  auto degrade = [&](const std::string& why) {
    if (!options.allow_degrade)
      throw Error(ErrorKind::Io, "run_procs: cannot spawn workers (" + why +
                                     ") and degradation is disabled");
    emit_event({SupervisorEventKind::Degrade, 0, why});
    ParallelRunOptions po;
    po.init = options.init;
    po.obs = options.obs;
    po.recv_timeout_ms = options.run_timeout_ms;
    po.measure_phases = options.measure_phases;
    ParallelRunResult threaded = run_parallel(nest, q, tf, part, mapping, deps, po);
    result.written = std::move(threaded.written);
    stats.messages_sent = threaded.stats.messages_sent;
    stats.halo_loads = threaded.stats.halo_loads;
    stats.workers = threaded.stats.threads;
    stats.per_proc_compute_us = std::move(threaded.stats.per_proc_compute_us);
    stats.per_proc_wait_us = std::move(threaded.stats.per_proc_wait_us);
    stats.per_proc_send_us = std::move(threaded.stats.per_proc_send_us);
    stats.wall_us = threaded.stats.wall_us;
    stats.degraded = true;
    return result;
  };

  if (std::getenv("HYPART_PROC_FORCE_DEGRADE") != nullptr)
    return degrade("HYPART_PROC_FORCE_DEGRADE set");

  // Resolve seeded RandKill terms into concrete Kill faults so every epoch
  // (and every rerun with the same seed) injects identically.
  Schedule sched = build_schedule(q, tf, part, mapping, deps);
  std::vector<fault::ProcFault> pending_faults;
  for (const fault::ProcFault& f : options.proc_faults) {
    if (f.kind != fault::ProcFaultKind::RandKill) {
      pending_faults.push_back(f);
      continue;
    }
    std::mt19937_64 rng(f.seed);
    fault::ProcFault kill;
    kill.kind = fault::ProcFaultKind::Kill;
    kill.proc = static_cast<ProcId>(rng() % nprocs);
    const std::uint64_t steps =
        static_cast<std::uint64_t>(sched.max_step - sched.min_step) + 1;
    kill.at_step = sched.min_step + static_cast<std::int64_t>(rng() % steps);
    pending_faults.push_back(kill);
  }

  // The topology frames are routed along.  The mapper targets a hypercube,
  // so processor counts are powers of two in practice; anything else gets
  // unit hop charges and least-loaded (instead of spare-neighbor) respawn
  // placement.
  std::optional<Hypercube> cube;
  if (is_power_of_two(nprocs)) cube.emplace(log2_exact(nprocs));

  Supervisor::Options sup_opts;
  sup_opts.heartbeat_timeout_ms = options.heartbeat_timeout_ms;
  sup_opts.on_event = emit_event;
  Supervisor sup(std::move(sup_opts));

  std::vector<ProcId> ever_dead;  // cumulative, across epochs
  Mapping epoch_mapping = mapping;
  const bool measure = options.measure_phases;
  const auto run_clock_start = std::chrono::steady_clock::now();

  for (int epoch = 0;; ++epoch) {
    sched = build_schedule(q, tf, part, epoch_mapping, deps);

    std::vector<ProcId> live_procs;
    for (ProcId p = 0; p < nprocs; ++p)
      if (std::find(ever_dead.begin(), ever_dead.end(), p) == ever_dead.end())
        live_procs.push_back(p);

    // Per-proc fault triggers for this epoch (consumed faults excluded).
    std::vector<WorkerFaults> wf(nprocs);
    for (const fault::ProcFault& f : pending_faults) {
      WorkerFaults& t = wf[f.proc];
      switch (f.kind) {
        case fault::ProcFaultKind::Kill: t.kill_at = f.at_step; break;
        case fault::ProcFaultKind::Hang: t.hang_at = f.at_step; break;
        case fault::ProcFaultKind::TruncFrame: t.trunc_at = f.at_step; break;
        case fault::ProcFaultKind::DelaySend:
          t.delay_at = f.at_step;
          t.delay_ms = f.delay_ms;
          break;
        case fault::ProcFaultKind::RandKill: break;  // resolved above
      }
    }

    std::string spawn_error;
    bool spawned = sup.spawn(
        live_procs,
        [&](ProcId me, int fd) {
          worker_main(fd, me, nest, q, tf, deps, options.init, sched, wf[me],
                      options.heartbeat_interval_ms, measure);
        },
        &spawn_error);
    if (!spawned) return degrade(spawn_error);

    const auto epoch_start = std::chrono::steady_clock::now();
    auto last_progress = epoch_start;
    std::vector<std::pair<ProcId, Frame>> frames;
    std::vector<WorkerDeath> deaths;
    std::vector<WriteRecord> epoch_writes;
    std::vector<WorkerStats> epoch_stats(nprocs);
    std::int64_t epoch_messages = 0, epoch_hops = 0;
    std::size_t done = 0;
    bool epoch_failed = false;
    std::string worker_error;

    while (done < live_procs.size() && !epoch_failed && worker_error.empty()) {
      frames.clear();
      deaths.clear();
      sup.poll_once(10, frames, deaths);
      for (auto& [src, f] : frames) {
        switch (f.type) {
          case FrameType::Hello:
          case FrameType::Heartbeat: break;
          case FrameType::Data: {
            PayloadReader pr(f.payload);
            ProcId target = static_cast<ProcId>(pr.u64());
            if (target >= nprocs) {
              worker_error = "worker " + std::to_string(src) + " routed to bad target " +
                             std::to_string(target);
              break;
            }
            epoch_hops += cube ? cube->distance(src, target) : 1;
            ++epoch_messages;
            sup.send(target, f);
            last_progress = std::chrono::steady_clock::now();
            break;
          }
          case FrameType::Writes: {
            PayloadReader pr(f.payload);
            std::uint32_t n = pr.u32();
            for (std::uint32_t i = 0; i < n; ++i) {
              WriteRecord w;
              w.array = pr.str();
              w.element = pr.ivec();
              w.step = pr.i64();
              w.value = pr.f64();
              epoch_writes.push_back(std::move(w));
            }
            last_progress = std::chrono::steady_clock::now();
            break;
          }
          case FrameType::Stats: {
            PayloadReader pr(f.payload);
            WorkerStats& ws = epoch_stats[src];
            ws.compute_us = pr.f64();
            ws.wait_us = pr.f64();
            ws.send_us = pr.f64();
            ws.halo_loads = pr.i64();
            ws.send_retries = pr.i64();
            break;
          }
          case FrameType::Done:
            ++done;
            last_progress = std::chrono::steady_clock::now();
            break;
          case FrameType::Error: {
            PayloadReader pr(f.payload);
            worker_error = "worker " + std::to_string(src) + ": " + pr.str();
            break;
          }
        }
        if (!worker_error.empty()) break;
      }

      if (!deaths.empty()) {
        // First recovery-relevant event wins; kill the epoch and restart.
        epoch_failed = true;
        for (const WorkerDeath& d : deaths) {
          ever_dead.push_back(d.proc);
          if (obs.trace != nullptr)
            obs::emit_instant(obs.trace, "supervisor.death", "procs", obs::wall_clock_us(),
                              obs::kPipelinePid, obs::kPipelineTid,
                              {{"worker", static_cast<std::int64_t>(d.proc)},
                               {"reason", d.reason}});
          if (obs.metrics != nullptr) obs.metrics->add("procs.worker_deaths");
        }
        break;
      }

      if (options.run_timeout_ms > 0) {
        auto idle = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - last_progress)
                        .count();
        if (idle > static_cast<double>(options.run_timeout_ms)) {
          std::string dump = sup.dump_workers();
          sup.reset();
          throw StallError("run_procs: no schedule progress for " +
                               std::to_string(options.run_timeout_ms) + " ms (epoch " +
                               std::to_string(epoch) + ")",
                           dump);
        }
      }
    }

    if (!worker_error.empty()) {
      sup.reset();
      throw Error(ErrorKind::Internal, "run_procs: " + worker_error);
    }

    if (!epoch_failed) {
      // Success: drain remaining frames (Stats/Done may trail), merge
      // writes and report.
      for (int i = 0; i < 10 && sup.done_count() < live_procs.size(); ++i) {
        frames.clear();
        deaths.clear();
        sup.poll_once(10, frames, deaths);
      }
      sup.reset();

      std::unordered_map<std::string,
                         std::unordered_map<IntVec, std::pair<std::int64_t, double>, IntVecHash>>
          merged;
      for (const WriteRecord& w : epoch_writes) {
        auto& amap = merged[w.array];
        auto it = amap.find(w.element);
        if (it == amap.end() || it->second.first <= w.step)
          amap[w.element] = {w.step, w.value};
      }
      for (const auto& [array, values] : merged)
        for (const auto& [element, step_value] : values)
          result.written.store(array, element, step_value.second);

      stats.messages_sent = epoch_messages;
      stats.route_hops = epoch_hops;
      stats.workers = live_procs.size();
      stats.heartbeat_misses = sup.heartbeat_misses();
      stats.send_retries = sup.send_retries();
      for (const WorkerStats& ws : epoch_stats) {
        stats.halo_loads += ws.halo_loads;
        stats.send_retries += ws.send_retries;
      }
      if (measure) {
        stats.per_proc_compute_us.assign(nprocs, 0.0);
        stats.per_proc_wait_us.assign(nprocs, 0.0);
        stats.per_proc_send_us.assign(nprocs, 0.0);
        for (ProcId p = 0; p < nprocs; ++p) {
          stats.per_proc_compute_us[p] = epoch_stats[p].compute_us;
          stats.per_proc_wait_us[p] = epoch_stats[p].wait_us;
          stats.per_proc_send_us[p] = epoch_stats[p].send_us;
        }
        stats.wall_us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - run_clock_start)
                            .count();
      }
      break;
    }

    // ---- recovery: consume faults, reassign blocks, restart the epoch ----
    sup.reset();
    ++stats.recoveries;
    if (stats.recoveries > options.max_recoveries)
      throw WorkerDeathError("run_procs: worker died and recovery budget exhausted (" +
                             std::to_string(options.max_recoveries) + " restart(s) allowed)");

    std::sort(ever_dead.begin(), ever_dead.end());
    ever_dead.erase(std::unique(ever_dead.begin(), ever_dead.end()), ever_dead.end());
    if (ever_dead.size() >= nprocs)
      throw FaultError("run_procs: every worker has died; no spare to recover on");

    // A fault that fired is consumed: the respawned epoch must not re-kill
    // the spare's inherited schedule.  (DelaySend is non-fatal and would
    // not have caused the death, so it survives consumption.)
    std::vector<fault::ProcFault> remaining;
    for (const fault::ProcFault& f : pending_faults) {
      bool victim_dead = std::find(ever_dead.begin(), ever_dead.end(), f.proc) != ever_dead.end();
      if (victim_dead && f.kind != fault::ProcFaultKind::DelaySend) continue;
      remaining.push_back(f);
    }
    pending_faults = std::move(remaining);

    std::size_t before_blocks = stats.migrated_blocks;
    if (cube) {
      // Spare-neighbor policy with charged migration, exactly the degraded
      // -cube accounting the simulator uses (fault/remap.hpp).
      fault::FaultPlan plan;
      for (ProcId p : ever_dead) plan.node_faults.push_back({p, fault::kFromStart});
      fault::FaultSet fset = plan.resolve(*cube);
      fault::RemapResult remap = fault::remap_for_faults(part, mapping, *cube, fset);
      epoch_mapping = remap.mapping;
      stats.migrated_blocks = remap.migrations.size();
      stats.migration_words = remap.migration_words;
      for (const fault::Migration& m : remap.migrations)
        emit_event({SupervisorEventKind::Reassign, m.to,
                    "block " + std::to_string(m.block) + " from worker " +
                        std::to_string(m.from) + " (" + std::to_string(m.words) + " words)"});
    } else {
      // Non-power-of-two fallback: move each dead proc's blocks to the
      // least-loaded live proc (load = owned iteration count).
      std::vector<std::int64_t> block_words(part.block_count(), 0);
      for (std::size_t vid = 0; vid < q.vertices().size(); ++vid)
        ++block_words[part.block_of(vid)];
      std::vector<std::int64_t> load(nprocs, 0);
      for (std::size_t b = 0; b < part.block_count(); ++b)
        load[epoch_mapping.block_to_proc[b]] += block_words[b];
      auto is_dead = [&](ProcId p) {
        return std::find(ever_dead.begin(), ever_dead.end(), p) != ever_dead.end();
      };
      std::size_t migrated = 0;
      std::int64_t words = 0;
      for (std::size_t b = 0; b < part.block_count(); ++b) {
        ProcId owner = epoch_mapping.block_to_proc[b];
        if (!is_dead(owner)) continue;
        ProcId best = nprocs;
        for (ProcId p = 0; p < nprocs; ++p)
          if (!is_dead(p) && (best == nprocs || load[p] < load[best])) best = p;
        epoch_mapping.block_to_proc[b] = best;
        load[best] += block_words[b];
        ++migrated;
        words += block_words[b];
        emit_event({SupervisorEventKind::Reassign, best,
                    "block " + std::to_string(b) + " from worker " + std::to_string(owner) +
                        " (" + std::to_string(block_words[b]) + " words)"});
      }
      stats.migrated_blocks += migrated;
      stats.migration_words += words;
    }
    if (obs.metrics != nullptr) {
      obs.metrics->add("procs.recoveries");
      obs.metrics->add("procs.migrated_blocks",
                       static_cast<std::int64_t>(stats.migrated_blocks - before_blocks));
    }
  }

  if (obs.metrics != nullptr) {
    obs.metrics->add("procs.messages_routed", stats.messages_sent);
    obs.metrics->add("procs.route_hops", stats.route_hops);
    obs.metrics->add("procs.halo_loads", stats.halo_loads);
    obs.metrics->add("procs.workers", static_cast<std::int64_t>(stats.workers));
    obs.metrics->add("procs.migration_words", stats.migration_words);
  }
  return result;
}

}  // namespace hypart
