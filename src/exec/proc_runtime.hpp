// hypart — the multi-process execution backend.
//
// run_procs() executes the same per-processor SPMD program that
// codegen/spmd emits and the threaded runtime interprets, but with the
// paper's machine model taken literally: every simulated processor is a
// real OS process with a private address space, values cross between them
// only as framed messages over sockets, and a processor can actually fail.
// A Supervisor (exec/supervisor.hpp) forks the workers, routes every DATA
// frame along the mapped hypercube (charging e-cube hop counts), and
// watches for crashes, hangs and truncated frames.
//
// Recovery is epoch restart with block reassignment: when a worker dies,
// the supervisor kills the epoch, reassigns every dead processor's blocks
// to a live spare with fault/remap's charged-migration policy (falling
// back to least-loaded placement on non-power-of-two machines), respawns,
// and reruns.  Faults that already fired are consumed, so a seeded fault
// plan converges instead of killing every epoch; after `max_recoveries`
// restarts the run aborts with WorkerDeathError.  A successful run's
// output is bit-identical to the sequential interpreter — the property the
// tests pin under every injected failure.
//
// When fork/socketpair hit resource exhaustion (EMFILE/ENFILE/ENOMEM/
// EAGAIN) — or HYPART_PROC_FORCE_DEGRADE is set — the backend degrades
// gracefully to the threaded run_parallel with `stats.degraded` set, a
// documented fallback rather than a crash (proc faults are not injectable
// in degraded mode and are skipped).
#pragma once

#include "core/error.hpp"
#include "exec/interpreter.hpp"
#include "fault/fault_plan.hpp"
#include "obs/obs.hpp"

namespace hypart {

struct ProcRunStats {
  std::int64_t messages_sent = 0;  ///< DATA frames routed worker -> worker
  std::int64_t halo_loads = 0;
  std::int64_t route_hops = 0;  ///< hypercube hops charged for routed frames
  std::size_t workers = 0;      ///< workers of the final (successful) epoch
  int recoveries = 0;           ///< epoch restarts after worker deaths
  std::size_t migrated_blocks = 0;   ///< blocks reassigned off dead workers
  std::int64_t migration_words = 0;  ///< iteration words those blocks carried
  std::int64_t heartbeat_misses = 0;
  std::int64_t send_retries = 0;  ///< backoff retries across all sends
  bool degraded = false;          ///< fell back to the threaded backend
  /// Per-worker phase clocks (µs), filled only when measure_phases; same
  /// tiling contract as ParallelRunStats so the accuracy ledger can
  /// attribute measured time per component for either backend.
  std::vector<double> per_proc_compute_us;
  std::vector<double> per_proc_wait_us;
  std::vector<double> per_proc_send_us;
  /// Supervisor-measured wall time of the successful epoch (µs); includes
  /// fork/teardown, honestly pricing what the process backend costs.
  /// 0 unless measure_phases.
  double wall_us = 0.0;
};

struct ProcRunResult {
  ArrayStore written;  ///< merged written values (last hyperplane step wins)
  ProcRunStats stats;
};

struct ProcRunOptions {
  InitFn init = default_init;
  obs::ObsContext obs{};  ///< parent-side only; children never touch it
  /// How often a blocked worker proves liveness.
  std::int64_t heartbeat_interval_ms = 50;
  /// Supervisor kills a worker silent for this long (<= 0 disables).
  std::int64_t heartbeat_timeout_ms = 2000;
  /// Whole-run stall watchdog: no schedule progress (DATA/WRITES/DONE) for
  /// this long aborts with StallError (<= 0 disables).
  std::int64_t run_timeout_ms = 30000;
  /// Epoch restarts allowed before aborting with WorkerDeathError.
  int max_recoveries = 4;
  bool measure_phases = false;
  /// Injected real-process faults (from `--faults proc:...`).
  std::vector<fault::ProcFault> proc_faults;
  /// Permit the documented fallback to run_parallel on fork/socket
  /// resource exhaustion; when false such exhaustion throws Error(Io).
  bool allow_degrade = true;
};

/// Execute the partitioned, mapped nest on one OS process per processor
/// under supervision.  Deterministic result (equals run_sequential);
/// throws StallError when the run watchdog fires, WorkerDeathError when
/// recovery attempts are exhausted, FaultError when a death is
/// unsurvivable (no live spare), Error(Config) on invalid options.
ProcRunResult run_procs(const LoopNest& nest, const ComputationStructure& q,
                        const TimeFunction& tf, const Partition& part,
                        const Mapping& mapping, const DependenceInfo& deps,
                        const ProcRunOptions& options = {});

}  // namespace hypart
