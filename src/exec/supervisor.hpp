// hypart::exec — process supervision for the multi-process backend.
//
// The threaded runtime (exec/parallel_runtime.hpp) shares one address
// space; this layer removes that last simplification.  A Supervisor forks
// one OS process per simulated processor, connected to the parent by an
// AF_UNIX socketpair, and speaks a length-prefixed frame protocol over it.
// The parent is the hub of a hub-and-spoke star: workers never talk to each
// other directly, every DATA frame passes through the supervisor, which
// routes it to the destination worker and charges the hop count of the
// mapped topology — so the wire layout stays simple (N sockets, not N^2)
// while the accounting still reflects the hypercube the mapper targeted.
//
// Fault tolerance is the point, so the supervisor treats workers as
// unreliable by construction:
//   * all parent-side fds are nonblocking with per-worker in/out byte
//     buffers — a slow or dead worker can never wedge the router;
//   * each worker must produce a frame (heartbeats count) within the
//     heartbeat deadline or it is declared hung and SIGKILLed;
//   * death is detected three independent ways — EOF / error on the
//     socket, waitpid() reporting an exit or signal, and the heartbeat
//     deadline — and reported as a WorkerDeath with the detection reason;
//   * a partial frame left in a dead worker's input buffer is reported as
//     a truncated frame (the wire-corruption case framed protocols exist
//     to catch).
//
// The Supervisor is policy-free: it spawns, pumps I/O, detects death and
// kills.  What to *do* about a death (remap and restart the epoch) lives in
// exec/proc_runtime.cpp.  Lifecycle events stream through an optional
// callback so the runtime can forward them to obs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace hypart::exec {

/// Frame types of the worker <-> supervisor wire protocol.  On the wire a
/// frame is a little-endian u32 byte length (type byte + payload), the type
/// byte, then the payload.
enum class FrameType : std::uint8_t {
  Hello = 1,      ///< worker -> supervisor: {u64 proc} after startup
  Heartbeat = 2,  ///< worker -> supervisor: empty, proves liveness
  Data = 3,       ///< value message; supervisor routes to the target worker
  Writes = 4,     ///< worker -> supervisor: final write records
  Stats = 5,      ///< worker -> supervisor: phase clocks and counters
  Done = 6,       ///< worker -> supervisor: schedule finished, exiting
  Error = 7,      ///< worker -> supervisor: {string} fatal worker exception
};

[[nodiscard]] const char* to_string(FrameType type);

struct Frame {
  FrameType type = FrameType::Heartbeat;
  std::vector<std::uint8_t> payload;
};

/// Hard cap on a frame's wire size; a length prefix beyond it means the
/// stream is corrupt (or hostile) and the worker is declared dead rather
/// than letting a garbage length drive a huge allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 64u * 1024u * 1024u;

// ---- payload serialization ------------------------------------------------

/// Append-only little-endian payload builder.
class PayloadWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(const std::string& s);               ///< u32 length + bytes
  void ivec(const std::vector<std::int64_t>& v);  ///< u32 count + i64s

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Cursor over a received payload.  Every accessor throws a typed
/// hypart::Error (kind Internal — a malformed frame is a protocol bug, not
/// user input) when the payload is shorter than the read, so a truncated or
/// corrupt frame can never read past the buffer.
class PayloadReader {
 public:
  explicit PayloadReader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();
  std::vector<std::int64_t> ivec();
  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const;
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

// ---- worker-side blocking I/O ---------------------------------------------

/// Write one frame to a blocking fd via write_full (EINTR/partial-write
/// safe, bounded backoff on transient errors).  Returns false on hard error
/// (EPIPE: supervisor gone) or retry exhaustion; accumulates backoff
/// retries into *retries_out when non-null.
bool write_frame(int fd, const Frame& frame, int* retries_out = nullptr);

/// Read one frame from a blocking fd.  Returns 1 on success, 0 on clean
/// EOF at a frame boundary, -1 on error or a frame truncated mid-message.
int read_frame(int fd, Frame& frame);

/// poll()-based wait for readability so a blocked worker can interleave
/// heartbeats: returns 1 when `fd` is readable, 0 on timeout, -1 on error.
int wait_readable(int fd, int timeout_ms);

// ---- supervision ----------------------------------------------------------

enum class SupervisorEventKind {
  Spawn,          ///< worker process forked
  HeartbeatMiss,  ///< heartbeat deadline passed; worker will be killed
  Kill,           ///< SIGKILL sent to a worker
  Retry,          ///< a buffered send to a worker needed a backoff retry
  Reassign,       ///< (emitted by the runtime) blocks moved off a dead worker
  Degrade,        ///< (emitted by the runtime) fell back to the threaded backend
  WorkerExit,     ///< worker exited cleanly after Done
};

[[nodiscard]] const char* to_string(SupervisorEventKind kind);

struct SupervisorEvent {
  SupervisorEventKind kind = SupervisorEventKind::Spawn;
  ProcId proc = 0;
  std::string detail;
};

using SupervisorEventFn = std::function<void(const SupervisorEvent&)>;

/// One detected worker death and how it was detected ("socket closed",
/// "truncated frame", "killed by signal N", "heartbeat timeout", ...).
struct WorkerDeath {
  ProcId proc = 0;
  std::string reason;
};

class Supervisor {
 public:
  struct Options {
    /// A worker producing no frame for this long is declared hung and
    /// killed.  <= 0 disables the heartbeat watchdog.
    std::int64_t heartbeat_timeout_ms = 2000;
    SupervisorEventFn on_event;  ///< optional lifecycle event stream
  };

  explicit Supervisor(Options options) : options_(std::move(options)) {}
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Fork one worker per id in `procs`; `body(proc, fd)` runs in the child
  /// with a blocking socket fd and must never return (it _exit()s).
  /// Returns false — with any partially spawned workers cleaned up and
  /// `*error` describing the failed resource — when fork/socketpair hit
  /// resource exhaustion (EAGAIN/EMFILE/ENFILE/ENOMEM): the caller's
  /// graceful-degradation path.  Throws hypart::Error on non-resource
  /// failures (a bug, not pressure).
  bool spawn(const std::vector<ProcId>& procs,
             const std::function<void(ProcId, int)>& body, std::string* error);

  /// Pump I/O for up to `timeout_ms`: flush pending outbound bytes, read
  /// whatever arrived, check heartbeat deadlines and reap children.
  /// Complete frames are appended to `frames` (in per-worker arrival
  /// order); detected deaths to `deaths` (each worker reported once).
  void poll_once(int timeout_ms, std::vector<std::pair<ProcId, Frame>>& frames,
                 std::vector<WorkerDeath>& deaths);

  /// Queue a frame for delivery to `proc` (never blocks; bytes drain
  /// through poll_once as the worker's socket accepts them).
  void send(ProcId proc, const Frame& frame);

  /// Mark a worker as finished: its later EOF/exit is a clean WorkerExit,
  /// not a death, and its heartbeat deadline no longer applies.
  void mark_done(ProcId proc);

  /// SIGKILL one worker / every live worker.  The death surfaces through
  /// poll_once unless the worker was already marked done.
  void kill_worker(ProcId proc, const std::string& reason);
  void kill_all();

  /// Kill and reap everything and drop all per-worker state — the epoch
  /// boundary.  The Supervisor is ready for a fresh spawn() afterwards.
  void reset();

  [[nodiscard]] bool alive(ProcId proc) const;
  [[nodiscard]] std::size_t live_count() const;
  /// Workers that sent Done (still counted by live_count until they exit).
  [[nodiscard]] std::size_t done_count() const;
  /// Total backoff retries taken by buffered sends (observability).
  [[nodiscard]] std::int64_t send_retries() const { return send_retries_; }
  /// Heartbeat deadlines missed since construction (survives reset()).
  [[nodiscard]] std::int64_t heartbeat_misses() const { return heartbeat_misses_; }

  /// One line per worker (state, buffered bytes, last-frame age) for stall
  /// diagnostics.
  [[nodiscard]] std::string dump_workers() const;

 private:
  struct WorkerState {
    pid_t pid = -1;
    int fd = -1;
    bool done = false;     ///< Done frame seen
    bool dead = false;     ///< death already reported
    bool reaped = false;   ///< waitpid collected the child
    std::vector<std::uint8_t> inbuf;   ///< partial inbound frame bytes
    std::vector<std::uint8_t> outbuf;  ///< undelivered outbound bytes
    double last_frame_ms = 0.0;        ///< steady-clock ms of last frame
  };

  void emit(SupervisorEventKind kind, ProcId proc, std::string detail);
  void flush_out(WorkerState& w, ProcId proc);
  /// Drain readable bytes and extract complete frames; returns false when
  /// the stream ended (EOF or fatal read error).
  bool drain_in(WorkerState& w, ProcId proc, std::vector<std::pair<ProcId, Frame>>& frames);
  void declare_dead(ProcId proc, WorkerState& w, const std::string& reason,
                    std::vector<WorkerDeath>& deaths);
  void close_fd(WorkerState& w);
  void reap(WorkerState& w, bool block);
  [[nodiscard]] static double now_ms();

  Options options_;
  std::map<ProcId, WorkerState> workers_;
  std::int64_t send_retries_ = 0;
  std::int64_t heartbeat_misses_ = 0;
};

}  // namespace hypart::exec
