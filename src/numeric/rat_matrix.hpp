// hypart — exact linear algebra over Q.
//
// Used for rank computations over projected dependence vectors (rational
// coordinates), solving for hyperplane normal candidates, and geometric
// checks in tests.  Everything is exact Gaussian elimination over Rational.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "numeric/int_linalg.hpp"
#include "numeric/rational.hpp"

namespace hypart {

/// Dense rational vector.
using RatVec = std::vector<Rational>;

RatVec to_rational(const IntVec& v);
RatVec add(const RatVec& a, const RatVec& b);
RatVec sub(const RatVec& a, const RatVec& b);
RatVec scale(const RatVec& a, const Rational& k);
Rational dot(const RatVec& a, const RatVec& b);
Rational dot(const RatVec& a, const IntVec& b);
bool is_zero(const RatVec& a);
std::string to_string(const RatVec& a);

/// Smallest positive integer r with r*v integral; 1 for integral vectors
/// (including the zero vector).  This is the r_i of Algorithm 1, Step 1.
std::int64_t denominator_lcm(const RatVec& v);

/// Dense row-major rational matrix with exact elimination routines.
class RatMat {
 public:
  RatMat() = default;
  RatMat(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols) {}

  static RatMat from_rows(const std::vector<RatVec>& rows);
  static RatMat from_cols(const std::vector<RatVec>& cols);
  static RatMat from_int(const IntMat& m);
  static RatMat identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  Rational& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] const Rational& at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  [[nodiscard]] RatVec row(std::size_t r) const;
  [[nodiscard]] RatVec col(std::size_t c) const;
  [[nodiscard]] RatMat transposed() const;
  [[nodiscard]] RatMat multiplied(const RatMat& o) const;
  [[nodiscard]] RatVec apply(const RatVec& v) const;

  [[nodiscard]] std::size_t rank() const;
  [[nodiscard]] Rational det() const;

  /// Solve A x = b exactly; nullopt if inconsistent.  If the system is
  /// underdetermined, returns one particular solution.
  [[nodiscard]] std::optional<RatVec> solve(const RatVec& b) const;

  /// Basis of the (right) nullspace of A.
  [[nodiscard]] std::vector<RatVec> nullspace() const;

  /// Exact inverse; nullopt if singular or non-square.
  [[nodiscard]] std::optional<RatMat> inverse() const;

  friend bool operator==(const RatMat& a, const RatMat& b) = default;
  [[nodiscard]] std::string to_string() const;

 private:
  /// Reduced row echelon form; returns pivot column of each pivot row.
  [[nodiscard]] std::vector<std::size_t> rref(RatMat& m) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Rational> data_;
};

std::ostream& operator<<(std::ostream& os, const RatMat& m);

/// Rank of a set of rational vectors (columns).
std::size_t rank_of(const std::vector<RatVec>& vectors);

/// True if `v` is in the span of `basis`.
bool in_span(const std::vector<RatVec>& basis, const RatVec& v);

}  // namespace hypart
