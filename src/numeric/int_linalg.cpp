#include "numeric/int_linalg.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hypart {

using detail::checked_add;
using detail::checked_mul;
using detail::checked_neg;
using detail::checked_sub;

IntMat IntMat::from_rows(const std::vector<IntVec>& rows) {
  IntMat m(rows.size(), rows.empty() ? 0 : rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols()) throw std::invalid_argument("IntMat::from_rows: ragged rows");
    for (std::size_t c = 0; c < m.cols(); ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

IntMat IntMat::from_cols(const std::vector<IntVec>& cols) {
  IntMat m(cols.empty() ? 0 : cols.front().size(), cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    if (cols[c].size() != m.rows()) throw std::invalid_argument("IntMat::from_cols: ragged columns");
    for (std::size_t r = 0; r < m.rows(); ++r) m.at(r, c) = cols[c][r];
  }
  return m;
}

IntMat IntMat::identity(std::size_t n) {
  IntMat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

IntVec IntMat::row(std::size_t r) const {
  IntVec v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = at(r, c);
  return v;
}

IntVec IntMat::col(std::size_t c) const {
  IntVec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = at(r, c);
  return v;
}

IntMat IntMat::transposed() const {
  IntMat m(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) m.at(c, r) = at(r, c);
  return m;
}

IntMat IntMat::multiplied(const IntMat& o) const {
  if (cols_ != o.rows_) throw std::invalid_argument("IntMat::multiplied: shape mismatch");
  IntMat m(rows_, o.cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      std::int64_t a = at(r, k);
      if (a == 0) continue;
      for (std::size_t c = 0; c < o.cols_; ++c)
        m.at(r, c) = checked_add(m.at(r, c), checked_mul(a, o.at(k, c)));
    }
  return m;
}

std::string IntMat::to_string() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) os << (c ? " " : "[") << at(r, c);
    os << "]" << (r + 1 == rows_ ? "]" : "\n");
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntMat& m) { return os << m.to_string(); }

IntVec add(const IntVec& a, const IntVec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("add: size mismatch");
  IntVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = checked_add(a[i], b[i]);
  return r;
}

IntVec sub(const IntVec& a, const IntVec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("sub: size mismatch");
  IntVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = checked_sub(a[i], b[i]);
  return r;
}

IntVec scale(const IntVec& a, std::int64_t k) {
  IntVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = checked_mul(a[i], k);
  return r;
}

IntVec negate(const IntVec& a) {
  IntVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = checked_neg(a[i]);
  return r;
}

std::int64_t dot(const IntVec& a, const IntVec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  std::int64_t s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s = checked_add(s, checked_mul(a[i], b[i]));
  return s;
}

bool is_zero(const IntVec& a) {
  return std::all_of(a.begin(), a.end(), [](std::int64_t x) { return x == 0; });
}

std::int64_t content(const IntVec& a) {
  std::int64_t g = 0;
  for (std::int64_t x : a) g = gcd64(g, x);
  return g;
}

IntVec primitive(const IntVec& a) {
  std::int64_t g = content(a);
  if (g == 0) return a;
  IntVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] / g;
  for (std::int64_t x : r) {
    if (x > 0) break;
    if (x < 0) {
      r = negate(r);
      break;
    }
  }
  return r;
}

std::string to_string(const IntVec& a) {
  std::string s = "(";
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(a[i]);
  }
  return s + ")";
}

ExtGcd ext_gcd(std::int64_t a, std::int64_t b) {
  // Iterative extended Euclid; coefficients stay within int64 because
  // |x| <= |b|/(2g) and |y| <= |a|/(2g).
  std::int64_t old_r = a, r = b;
  std::int64_t old_s = 1, s = 0;
  std::int64_t old_t = 0, t = 1;
  while (r != 0) {
    std::int64_t q = old_r / r;
    std::int64_t tmp = old_r - q * r;
    old_r = r;
    r = tmp;
    tmp = old_s - q * s;
    old_s = s;
    s = tmp;
    tmp = old_t - q * t;
    old_t = t;
    t = tmp;
  }
  if (old_r < 0) {
    old_r = checked_neg(old_r);
    old_s = checked_neg(old_s);
    old_t = checked_neg(old_t);
  }
  return {old_r, old_s, old_t};
}

namespace {

// Column operations used by the Hermite normal form.
void col_swap(IntMat& m, std::size_t c1, std::size_t c2) {
  for (std::size_t r = 0; r < m.rows(); ++r) std::swap(m.at(r, c1), m.at(r, c2));
}
void col_negate(IntMat& m, std::size_t c) {
  for (std::size_t r = 0; r < m.rows(); ++r) m.at(r, c) = checked_neg(m.at(r, c));
}
// c_dst += k * c_src
void col_axpy(IntMat& m, std::size_t c_dst, std::size_t c_src, std::int64_t k) {
  if (k == 0) return;
  for (std::size_t r = 0; r < m.rows(); ++r)
    m.at(r, c_dst) = checked_add(m.at(r, c_dst), checked_mul(k, m.at(r, c_src)));
}
}  // namespace

HermiteResult hermite_normal_form(const IntMat& a) {
  IntMat h = a;
  IntMat u = IntMat::identity(a.cols());
  std::size_t pivot_col = 0;
  for (std::size_t row = 0; row < a.rows() && pivot_col < a.cols(); ++row) {
    // Zero out everything to the right of pivot_col in this row.
    bool any = false;
    for (std::size_t c = pivot_col; c < a.cols(); ++c) {
      if (h.at(row, c) != 0) {
        any = true;
        break;
      }
    }
    if (!any) continue;
    for (std::size_t c = pivot_col + 1; c < a.cols(); ++c) {
      if (h.at(row, c) == 0) continue;
      // Apply identical transforms to h and u to maintain A*U == H.
      std::int64_t p = h.at(row, pivot_col);
      std::int64_t q = h.at(row, c);
      if (p == 0) {
        col_swap(h, pivot_col, c);
        col_swap(u, pivot_col, c);
        continue;
      }
      ExtGcd e = ext_gcd(p, q);
      std::int64_t pf = p / e.g;
      std::int64_t qf = q / e.g;
      for (IntMat* m : {&h, &u}) {
        for (std::size_t r = 0; r < m->rows(); ++r) {
          std::int64_t v1 = m->at(r, pivot_col);
          std::int64_t v2 = m->at(r, c);
          m->at(r, pivot_col) = checked_add(checked_mul(e.x, v1), checked_mul(e.y, v2));
          m->at(r, c) = checked_sub(checked_mul(pf, v2), checked_mul(qf, v1));
        }
      }
    }
    if (h.at(row, pivot_col) < 0) {
      col_negate(h, pivot_col);
      col_negate(u, pivot_col);
    }
    if (h.at(row, pivot_col) == 0) continue;
    // Reduce the entries to the left of the pivot into [0, pivot).
    std::int64_t piv = h.at(row, pivot_col);
    for (std::size_t c = 0; c < pivot_col; ++c) {
      std::int64_t v = h.at(row, c);
      std::int64_t q = v / piv;
      if (v % piv < 0) --q;  // floor division
      if (q != 0) {
        col_axpy(h, c, pivot_col, checked_neg(q));
        col_axpy(u, c, pivot_col, checked_neg(q));
      }
    }
    ++pivot_col;
  }
  return {h, u, pivot_col};
}

SmithResult smith_normal_form(const IntMat& a) {
  IntMat s = a;
  IntMat u = IntMat::identity(a.rows());
  IntMat v = IntMat::identity(a.cols());

  auto row_gcd_step = [&](std::size_t pivot, std::size_t r) {
    std::int64_t p = s.at(pivot, pivot);
    std::int64_t q = s.at(r, pivot);
    if (q == 0) return;
    if (p == 0) {
      for (std::size_t c = 0; c < s.cols(); ++c) std::swap(s.at(pivot, c), s.at(r, c));
      for (std::size_t c = 0; c < u.cols(); ++c) std::swap(u.at(pivot, c), u.at(r, c));
      return;
    }
    if (q % p == 0) {
      // Plain elimination: never disturbs the pivot row, so the alternating
      // row/column clearing terminates (the gcd transform below may pick a
      // Bezout pair that rewrites the pivot row even when p | q).
      std::int64_t f = q / p;
      for (IntMat* m : {&s, &u})
        for (std::size_t c = 0; c < m->cols(); ++c)
          m->at(r, c) = checked_sub(m->at(r, c), checked_mul(f, m->at(pivot, c)));
      return;
    }
    ExtGcd e = ext_gcd(p, q);
    std::int64_t pf = p / e.g;
    std::int64_t qf = q / e.g;
    for (IntMat* m : {&s, &u}) {
      for (std::size_t c = 0; c < m->cols(); ++c) {
        std::int64_t v1 = m->at(pivot, c);
        std::int64_t v2 = m->at(r, c);
        m->at(pivot, c) = checked_add(checked_mul(e.x, v1), checked_mul(e.y, v2));
        m->at(r, c) = checked_sub(checked_mul(pf, v2), checked_mul(qf, v1));
      }
    }
  };
  auto col_gcd_step = [&](std::size_t pivot, std::size_t c) {
    std::int64_t p = s.at(pivot, pivot);
    std::int64_t q = s.at(pivot, c);
    if (q == 0) return;
    if (p == 0) {
      col_swap(s, pivot, c);
      col_swap(v, pivot, c);
      return;
    }
    if (q % p == 0) {
      std::int64_t f = q / p;  // plain elimination, pivot column untouched
      for (IntMat* m : {&s, &v})
        for (std::size_t r = 0; r < m->rows(); ++r)
          m->at(r, c) = checked_sub(m->at(r, c), checked_mul(f, m->at(r, pivot)));
      return;
    }
    ExtGcd e = ext_gcd(p, q);
    std::int64_t pf = p / e.g;
    std::int64_t qf = q / e.g;
    for (IntMat* m : {&s, &v}) {
      for (std::size_t r = 0; r < m->rows(); ++r) {
        std::int64_t v1 = m->at(r, pivot);
        std::int64_t v2 = m->at(r, c);
        m->at(r, pivot) = checked_add(checked_mul(e.x, v1), checked_mul(e.y, v2));
        m->at(r, c) = checked_sub(checked_mul(pf, v2), checked_mul(qf, v1));
      }
    }
  };

  std::size_t n = std::min(a.rows(), a.cols());
  for (std::size_t k = 0; k < n; ++k) {
    // Find a nonzero pivot in the trailing submatrix.
    std::size_t pr = k, pc = k;
    bool found = false;
    for (std::size_t r = k; r < a.rows() && !found; ++r)
      for (std::size_t c = k; c < a.cols() && !found; ++c)
        if (s.at(r, c) != 0) {
          pr = r;
          pc = c;
          found = true;
        }
    if (!found) break;
    if (pr != k) {
      for (std::size_t c = 0; c < s.cols(); ++c) std::swap(s.at(k, c), s.at(pr, c));
      for (std::size_t c = 0; c < u.cols(); ++c) std::swap(u.at(k, c), u.at(pr, c));
    }
    if (pc != k) {
      col_swap(s, k, pc);
      col_swap(v, k, pc);
    }
    // Alternate row/column elimination until row k and column k are clear.
    bool dirty = true;
    while (dirty) {
      dirty = false;
      for (std::size_t r = k + 1; r < a.rows(); ++r)
        if (s.at(r, k) != 0) {
          row_gcd_step(k, r);
          dirty = true;
        }
      for (std::size_t c = k + 1; c < a.cols(); ++c)
        if (s.at(k, c) != 0) {
          col_gcd_step(k, c);
          dirty = true;
        }
    }
    if (s.at(k, k) < 0) {
      for (std::size_t c = 0; c < s.cols(); ++c) s.at(k, c) = checked_neg(s.at(k, c));
      for (std::size_t c = 0; c < u.cols(); ++c) u.at(k, c) = checked_neg(u.at(k, c));
    }
  }
  // Enforce the divisibility chain s_k | s_{k+1}.
  for (std::size_t k = 0; k + 1 < n; ++k) {
    for (std::size_t j = k + 1; j < n; ++j) {
      std::int64_t a1 = s.at(k, k);
      std::int64_t a2 = s.at(j, j);
      if (a1 == 0 || a2 == 0) continue;
      if (a2 % a1 == 0) continue;
      // Standard trick: add column j to column k, then re-clear the 2x2 block.
      col_axpy(s, k, j, 1);
      col_axpy(v, k, j, 1);
      row_gcd_step(k, j);
      col_gcd_step(k, j);
      // The row step may reintroduce entries; loop conservatively.
      bool dirty = true;
      while (dirty) {
        dirty = false;
        if (s.at(j, k) != 0) {
          row_gcd_step(k, j);
          dirty = true;
        }
        if (s.at(k, j) != 0) {
          col_gcd_step(k, j);
          dirty = true;
        }
      }
      if (s.at(k, k) < 0) {
        for (std::size_t c = 0; c < s.cols(); ++c) s.at(k, c) = checked_neg(s.at(k, c));
        for (std::size_t c = 0; c < u.cols(); ++c) u.at(k, c) = checked_neg(u.at(k, c));
      }
      if (s.at(j, j) < 0) {
        for (std::size_t c = 0; c < s.cols(); ++c) s.at(j, c) = checked_neg(s.at(j, c));
        for (std::size_t c = 0; c < u.cols(); ++c) u.at(j, c) = checked_neg(u.at(j, c));
      }
    }
  }
  std::vector<std::int64_t> divisors;
  for (std::size_t k = 0; k < n; ++k)
    if (s.at(k, k) != 0) divisors.push_back(s.at(k, k));
  return {s, u, v, divisors};
}

std::size_t int_rank(const IntMat& a) { return hermite_normal_form(a).rank; }

std::int64_t int_det(const IntMat& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("int_det: matrix not square");
  std::size_t n = a.rows();
  if (n == 0) return 1;
  // Bareiss fraction-free elimination: exact, divisions are always exact.
  IntMat m = a;
  std::int64_t prev = 1;
  std::int64_t sign = 1;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    if (m.at(k, k) == 0) {
      std::size_t swap_row = k + 1;
      while (swap_row < n && m.at(swap_row, k) == 0) ++swap_row;
      if (swap_row == n) return 0;
      for (std::size_t c = 0; c < n; ++c) std::swap(m.at(k, c), m.at(swap_row, c));
      sign = -sign;
    }
    for (std::size_t i = k + 1; i < n; ++i)
      for (std::size_t j = k + 1; j < n; ++j) {
        std::int64_t num = checked_sub(checked_mul(m.at(i, j), m.at(k, k)),
                                       checked_mul(m.at(i, k), m.at(k, j)));
        m.at(i, j) = num / prev;  // exact by Bareiss invariant
      }
    prev = m.at(k, k);
  }
  return sign * m.at(n - 1, n - 1);
}

}  // namespace hypart
