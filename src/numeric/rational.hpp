// hypart — exact rational arithmetic.
//
// The projection phase of Sheu & Tai's Algorithm 1 produces points with
// rational coordinates (e.g. the projected dependence vectors of matrix
// multiplication are (-1/3, 2/3, -1/3)).  All geometry in this library is
// exact; Rational is the scalar type used whenever scaled-integer
// coordinates (see partition/projection.hpp) are not applicable.
#pragma once

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <numeric>
#include <stdexcept>
#include <string>

namespace hypart {

/// Thrown on arithmetic overflow or division by zero in exact arithmetic.
class ArithmeticError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

/// Checked int64 helpers.  All exact arithmetic in hypart funnels through
/// these so that silent wraparound can never corrupt a partition.
inline std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) throw ArithmeticError("int64 add overflow");
  return r;
}
inline std::int64_t checked_sub(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_sub_overflow(a, b, &r)) throw ArithmeticError("int64 sub overflow");
  return r;
}
inline std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) throw ArithmeticError("int64 mul overflow");
  return r;
}
inline std::int64_t checked_neg(std::int64_t a) {
  if (a == INT64_MIN) throw ArithmeticError("int64 negate overflow");
  return -a;
}

}  // namespace detail

/// gcd that is safe for INT64_MIN and always returns a non-negative result.
std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// lcm with overflow checking.  lcm64(0, x) == 0.
std::int64_t lcm64(std::int64_t a, std::int64_t b);

/// An exact rational number backed by checked 64-bit integers.
///
/// Invariants: den > 0 and gcd(|num|, den) == 1 (canonical form).  All
/// operations either produce a canonical result or throw ArithmeticError.
class Rational {
 public:
  constexpr Rational() = default;
  Rational(std::int64_t numerator) : num_(numerator), den_(1) {}  // NOLINT: implicit by design
  Rational(std::int64_t numerator, std::int64_t denominator);

  [[nodiscard]] std::int64_t num() const { return num_; }
  [[nodiscard]] std::int64_t den() const { return den_; }

  [[nodiscard]] bool is_zero() const { return num_ == 0; }
  [[nodiscard]] bool is_integer() const { return den_ == 1; }
  [[nodiscard]] int sign() const { return num_ > 0 ? 1 : (num_ < 0 ? -1 : 0); }

  /// Exact conversion to integer; throws if not an integer.
  [[nodiscard]] std::int64_t to_integer() const;

  /// Approximate double value (for reporting only; never used in geometry).
  [[nodiscard]] double to_double() const { return static_cast<double>(num_) / static_cast<double>(den_); }

  [[nodiscard]] Rational abs() const;
  [[nodiscard]] Rational reciprocal() const;

  /// Largest integer <= value / smallest integer >= value.
  [[nodiscard]] std::int64_t floor() const;
  [[nodiscard]] std::int64_t ceil() const;

  Rational& operator+=(const Rational& o);
  Rational& operator-=(const Rational& o);
  Rational& operator*=(const Rational& o);
  Rational& operator/=(const Rational& o);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }
  friend Rational operator-(const Rational& a) { return {detail::checked_neg(a.num_), a.den_, NoNormalize{}}; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

  [[nodiscard]] std::string to_string() const;

 private:
  struct NoNormalize {};
  Rational(std::int64_t n, std::int64_t d, NoNormalize) : num_(n), den_(d) {}

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace hypart

template <>
struct std::hash<hypart::Rational> {
  std::size_t operator()(const hypart::Rational& r) const noexcept {
    std::size_t h = std::hash<std::int64_t>{}(r.num());
    h ^= std::hash<std::int64_t>{}(r.den()) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }
};
