#include "numeric/rational.hpp"

#include <ostream>

namespace hypart {

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  if (a == INT64_MIN || b == INT64_MIN) {
    // |INT64_MIN| is not representable; handle by dividing out one factor
    // of two first (INT64_MIN is even).
    if (a == INT64_MIN && b == INT64_MIN) throw ArithmeticError("gcd64 overflow");
    if (a == INT64_MIN) {
      if (b == 0) throw ArithmeticError("gcd64 overflow");
      return gcd64(b, a % b);
    }
    if (a == 0) throw ArithmeticError("gcd64 overflow");
    return gcd64(a, b % a);
  }
  std::int64_t x = a < 0 ? -a : a;
  std::int64_t y = b < 0 ? -b : b;
  while (y != 0) {
    std::int64_t t = x % y;
    x = y;
    y = t;
  }
  return x;
}

std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  std::int64_t g = gcd64(a, b);
  std::int64_t q = a / g;
  std::int64_t l = detail::checked_mul(q < 0 ? -q : q, b < 0 ? -b : b);
  return l;
}

Rational::Rational(std::int64_t numerator, std::int64_t denominator) {
  if (denominator == 0) throw ArithmeticError("Rational: zero denominator");
  if (denominator < 0) {
    numerator = detail::checked_neg(numerator);
    denominator = detail::checked_neg(denominator);
  }
  std::int64_t g = gcd64(numerator, denominator);
  if (g > 1) {
    numerator /= g;
    denominator /= g;
  }
  num_ = numerator;
  den_ = denominator;
}

std::int64_t Rational::to_integer() const {
  if (den_ != 1) throw ArithmeticError("Rational::to_integer: " + to_string() + " is not an integer");
  return num_;
}

Rational Rational::abs() const { return num_ < 0 ? -*this : *this; }

Rational Rational::reciprocal() const {
  if (num_ == 0) throw ArithmeticError("Rational::reciprocal of zero");
  return {den_, num_};
}

std::int64_t Rational::floor() const {
  std::int64_t q = num_ / den_;
  if (num_ % den_ != 0 && num_ < 0) --q;
  return q;
}

std::int64_t Rational::ceil() const {
  std::int64_t q = num_ / den_;
  if (num_ % den_ != 0 && num_ > 0) ++q;
  return q;
}

Rational& Rational::operator+=(const Rational& o) {
  // a/b + c/d with g = gcd(b, d): (a*(d/g) + c*(b/g)) / (b/g*d)
  std::int64_t g = gcd64(den_, o.den_);
  std::int64_t lhs = detail::checked_mul(num_, o.den_ / g);
  std::int64_t rhs = detail::checked_mul(o.num_, den_ / g);
  std::int64_t n = detail::checked_add(lhs, rhs);
  std::int64_t d = detail::checked_mul(den_ / g, o.den_);
  *this = Rational(n, d);
  return *this;
}

Rational& Rational::operator-=(const Rational& o) { return *this += -o; }

Rational& Rational::operator*=(const Rational& o) {
  // Cross-cancel before multiplying to keep intermediates small.
  std::int64_t g1 = gcd64(num_, o.den_);
  std::int64_t g2 = gcd64(o.num_, den_);
  std::int64_t n = detail::checked_mul(num_ / g1, o.num_ / g2);
  std::int64_t d = detail::checked_mul(den_ / g2, o.den_ / g1);
  num_ = n;
  den_ = d;
  return *this;
}

Rational& Rational::operator/=(const Rational& o) { return *this *= o.reciprocal(); }

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // Compare a.num/a.den vs b.num/b.den via cross multiplication (checked).
  std::int64_t lhs = detail::checked_mul(a.num_, b.den_);
  std::int64_t rhs = detail::checked_mul(b.num_, a.den_);
  return lhs <=> rhs;
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) { return os << r.to_string(); }

}  // namespace hypart
