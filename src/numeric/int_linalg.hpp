// hypart — integer vectors/matrices and lattice normal forms.
//
// Dependence vectors, index points and scaled projected points are all
// integer vectors.  The Hermite and Smith normal forms drive the
// independent-partitioning baselines (GCD / minimum-distance family,
// paper §I): the number of independent blocks of a full-rank dependence
// lattice equals |det| of its basis, and residue classes modulo the lattice
// label the blocks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "numeric/rational.hpp"

namespace hypart {

/// Dense integer vector (an index point, dependence vector, or time function).
using IntVec = std::vector<std::int64_t>;

/// Dense row-major integer matrix.
class IntMat {
 public:
  IntMat() = default;
  IntMat(std::size_t rows, std::size_t cols, std::int64_t fill = 0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from a list of rows; all rows must have equal length.
  static IntMat from_rows(const std::vector<IntVec>& rows);
  /// Build from a list of columns (e.g. a dependence matrix whose columns
  /// are dependence vectors, as in the paper's Example 2).
  static IntMat from_cols(const std::vector<IntVec>& cols);
  static IntMat identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  std::int64_t& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] std::int64_t at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  [[nodiscard]] IntVec row(std::size_t r) const;
  [[nodiscard]] IntVec col(std::size_t c) const;

  [[nodiscard]] IntMat transposed() const;
  [[nodiscard]] IntMat multiplied(const IntMat& o) const;

  friend bool operator==(const IntMat& a, const IntMat& b) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int64_t> data_;
};

std::ostream& operator<<(std::ostream& os, const IntMat& m);

// ---- vector operations ----------------------------------------------------

IntVec add(const IntVec& a, const IntVec& b);
IntVec sub(const IntVec& a, const IntVec& b);
IntVec scale(const IntVec& a, std::int64_t k);
IntVec negate(const IntVec& a);
std::int64_t dot(const IntVec& a, const IntVec& b);
bool is_zero(const IntVec& a);

/// gcd of all components (0 for the zero vector).
std::int64_t content(const IntVec& a);

/// Divide every component by its content, keeping the sign of the first
/// nonzero component positive.  Returns the zero vector unchanged.
IntVec primitive(const IntVec& a);

std::string to_string(const IntVec& a);

// ---- extended gcd ----------------------------------------------------------

struct ExtGcd {
  std::int64_t g;  ///< gcd(a, b) >= 0
  std::int64_t x;  ///< Bezout coefficient of a
  std::int64_t y;  ///< Bezout coefficient of b
};
ExtGcd ext_gcd(std::int64_t a, std::int64_t b);

// ---- normal forms ----------------------------------------------------------

/// Result of a column-style Hermite normal form computation: H = A * U with
/// U unimodular, H lower-triangular-ish with pivot columns first.
struct HermiteResult {
  IntMat h;          ///< the Hermite normal form (same shape as input)
  IntMat u;          ///< unimodular column-transform, A*U == H
  std::size_t rank;  ///< number of nonzero columns of h
};

/// Column Hermite normal form of an integer matrix (columns are generators
/// of a lattice).  Pivots are positive; entries right of a pivot are zero;
/// entries in a pivot row left of the pivot are reduced to [0, pivot).
HermiteResult hermite_normal_form(const IntMat& a);

/// Smith normal form: S = U * A * V with U, V unimodular and S diagonal with
/// s1 | s2 | ... | sr, the elementary divisors.
struct SmithResult {
  IntMat s;
  IntMat u;
  IntMat v;
  std::vector<std::int64_t> divisors;  ///< nonzero diagonal entries, each dividing the next
};
SmithResult smith_normal_form(const IntMat& a);

/// Rank of an integer matrix (computed exactly over Q).
std::size_t int_rank(const IntMat& a);

/// Determinant of a square integer matrix (exact, fraction-free Bareiss).
std::int64_t int_det(const IntMat& a);

}  // namespace hypart
