#include "numeric/rat_matrix.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hypart {

RatVec to_rational(const IntVec& v) {
  RatVec r(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) r[i] = Rational(v[i]);
  return r;
}

RatVec add(const RatVec& a, const RatVec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("RatVec add: size mismatch");
  RatVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

RatVec sub(const RatVec& a, const RatVec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("RatVec sub: size mismatch");
  RatVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

RatVec scale(const RatVec& a, const Rational& k) {
  RatVec r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] * k;
  return r;
}

Rational dot(const RatVec& a, const RatVec& b) {
  if (a.size() != b.size()) throw std::invalid_argument("RatVec dot: size mismatch");
  Rational s;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Rational dot(const RatVec& a, const IntVec& b) { return dot(a, to_rational(b)); }

bool is_zero(const RatVec& a) {
  return std::all_of(a.begin(), a.end(), [](const Rational& x) { return x.is_zero(); });
}

std::string to_string(const RatVec& a) {
  std::string s = "(";
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i) s += ", ";
    s += a[i].to_string();
  }
  return s + ")";
}

std::int64_t denominator_lcm(const RatVec& v) {
  std::int64_t l = 1;
  for (const Rational& x : v) l = lcm64(l, x.den());
  return l;
}

RatMat RatMat::from_rows(const std::vector<RatVec>& rows) {
  RatMat m(rows.size(), rows.empty() ? 0 : rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols()) throw std::invalid_argument("RatMat::from_rows: ragged rows");
    for (std::size_t c = 0; c < m.cols(); ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

RatMat RatMat::from_cols(const std::vector<RatVec>& cols) {
  RatMat m(cols.empty() ? 0 : cols.front().size(), cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    if (cols[c].size() != m.rows()) throw std::invalid_argument("RatMat::from_cols: ragged columns");
    for (std::size_t r = 0; r < m.rows(); ++r) m.at(r, c) = cols[c][r];
  }
  return m;
}

RatMat RatMat::from_int(const IntMat& m) {
  RatMat r(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) r.at(i, j) = Rational(m.at(i, j));
  return r;
}

RatMat RatMat::identity(std::size_t n) {
  RatMat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = Rational(1);
  return m;
}

RatVec RatMat::row(std::size_t r) const {
  RatVec v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = at(r, c);
  return v;
}

RatVec RatMat::col(std::size_t c) const {
  RatVec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = at(r, c);
  return v;
}

RatMat RatMat::transposed() const {
  RatMat m(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) m.at(c, r) = at(r, c);
  return m;
}

RatMat RatMat::multiplied(const RatMat& o) const {
  if (cols_ != o.rows_) throw std::invalid_argument("RatMat::multiplied: shape mismatch");
  RatMat m(rows_, o.cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      if (at(r, k).is_zero()) continue;
      for (std::size_t c = 0; c < o.cols_; ++c) m.at(r, c) += at(r, k) * o.at(k, c);
    }
  return m;
}

RatVec RatMat::apply(const RatVec& v) const {
  if (cols_ != v.size()) throw std::invalid_argument("RatMat::apply: size mismatch");
  RatVec r(rows_);
  for (std::size_t i = 0; i < rows_; ++i) r[i] = dot(row(i), v);
  return r;
}

std::vector<std::size_t> RatMat::rref(RatMat& m) const {
  std::vector<std::size_t> pivot_cols;
  std::size_t pr = 0;
  for (std::size_t pc = 0; pc < m.cols_ && pr < m.rows_; ++pc) {
    std::size_t sel = pr;
    while (sel < m.rows_ && m.at(sel, pc).is_zero()) ++sel;
    if (sel == m.rows_) continue;
    if (sel != pr)
      for (std::size_t c = 0; c < m.cols_; ++c) std::swap(m.at(pr, c), m.at(sel, c));
    Rational inv = m.at(pr, pc).reciprocal();
    for (std::size_t c = pc; c < m.cols_; ++c) m.at(pr, c) *= inv;
    for (std::size_t r = 0; r < m.rows_; ++r) {
      if (r == pr || m.at(r, pc).is_zero()) continue;
      Rational f = m.at(r, pc);
      for (std::size_t c = pc; c < m.cols_; ++c) m.at(r, c) -= f * m.at(pr, c);
    }
    pivot_cols.push_back(pc);
    ++pr;
  }
  return pivot_cols;
}

std::size_t RatMat::rank() const {
  RatMat m = *this;
  return rref(m).size();
}

Rational RatMat::det() const {
  if (rows_ != cols_) throw std::invalid_argument("RatMat::det: matrix not square");
  RatMat m = *this;
  Rational result(1);
  for (std::size_t k = 0; k < rows_; ++k) {
    std::size_t sel = k;
    while (sel < rows_ && m.at(sel, k).is_zero()) ++sel;
    if (sel == rows_) return Rational(0);
    if (sel != k) {
      for (std::size_t c = 0; c < cols_; ++c) std::swap(m.at(k, c), m.at(sel, c));
      result = -result;
    }
    result *= m.at(k, k);
    Rational inv = m.at(k, k).reciprocal();
    for (std::size_t r = k + 1; r < rows_; ++r) {
      if (m.at(r, k).is_zero()) continue;
      Rational f = m.at(r, k) * inv;
      for (std::size_t c = k; c < cols_; ++c) m.at(r, c) -= f * m.at(k, c);
    }
  }
  return result;
}

std::optional<RatVec> RatMat::solve(const RatVec& b) const {
  if (b.size() != rows_) throw std::invalid_argument("RatMat::solve: rhs size mismatch");
  RatMat aug(rows_, cols_ + 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) aug.at(r, c) = at(r, c);
    aug.at(r, cols_) = b[r];
  }
  std::vector<std::size_t> pivots = rref(aug);
  // Inconsistent if a pivot sits in the augmented column.
  if (!pivots.empty() && pivots.back() == cols_) return std::nullopt;
  RatVec x(cols_);
  for (std::size_t i = 0; i < pivots.size(); ++i) x[pivots[i]] = aug.at(i, cols_);
  return x;
}

std::vector<RatVec> RatMat::nullspace() const {
  RatMat m = *this;
  std::vector<std::size_t> pivots = rref(m);
  std::vector<bool> is_pivot(cols_, false);
  for (std::size_t pc : pivots) is_pivot[pc] = true;
  std::vector<RatVec> basis;
  for (std::size_t fc = 0; fc < cols_; ++fc) {
    if (is_pivot[fc]) continue;
    RatVec v(cols_);
    v[fc] = Rational(1);
    for (std::size_t i = 0; i < pivots.size(); ++i) v[pivots[i]] = -m.at(i, fc);
    basis.push_back(std::move(v));
  }
  return basis;
}

std::optional<RatMat> RatMat::inverse() const {
  if (rows_ != cols_) return std::nullopt;
  RatMat aug(rows_, 2 * cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) aug.at(r, c) = at(r, c);
    aug.at(r, cols_ + r) = Rational(1);
  }
  std::vector<std::size_t> pivots = rref(aug);
  if (pivots.size() != rows_) return std::nullopt;
  for (std::size_t i = 0; i < pivots.size(); ++i)
    if (pivots[i] != i) return std::nullopt;
  RatMat inv(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) inv.at(r, c) = aug.at(r, cols_ + c);
  return inv;
}

std::string RatMat::to_string() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) os << (c ? " " : "[") << at(r, c).to_string();
    os << "]";
    if (r + 1 != rows_) os << "\n";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const RatMat& m) { return os << m.to_string(); }

std::size_t rank_of(const std::vector<RatVec>& vectors) {
  if (vectors.empty()) return 0;
  return RatMat::from_cols(vectors).rank();
}

bool in_span(const std::vector<RatVec>& basis, const RatVec& v) {
  if (is_zero(v)) return true;
  if (basis.empty()) return false;
  return RatMat::from_cols(basis).solve(v).has_value();
}

}  // namespace hypart
