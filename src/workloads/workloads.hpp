// hypart — canonical nested-loop workloads.
//
// The loops the paper builds its examples and evaluation on, plus the
// kernels its introduction motivates (loops whose dependence lattice has
// determinant 1, which independent-partitioning methods serialize).
// Every factory returns a LoopNest whose dependence analysis reproduces
// the paper's dependence sets.
#pragma once

#include <cstdint>

#include "loop/loop_nest.hpp"

namespace hypart {
namespace workloads {

/// The paper's loop (L1) on a (size+1) x (size+1) domain:
///   S1: A[i+1,j+1] := A[i+1,j] + B[i,j];
///   S2: B[i+1,j]   := A[i,j] * 2 + C;
/// D = {(0,1), (1,1), (1,0)}.
LoopNest example_l1(std::int64_t size = 3);

/// Matrix multiplication (L2), n x n x n:
///   C[i,j] := C[i,j] + A[i,k]*B[k,j];
/// D = {(0,1,0) via A, (1,0,0) via B, (0,0,1) via C} (Example 2).
LoopNest matrix_multiplication(std::int64_t n = 3);

/// Matrix-vector multiplication (L4), M x M:
///   y[i] := y[i] + A[i,j]*x[j];
/// D = {(1,0) via x, (0,1) via y} (Section IV).
LoopNest matrix_vector(std::int64_t m);

/// The paper's hand-rewritten single-assignment matmul (L3): explicit
/// pipelining arrays Ap/Bp/Cp indexed by the full iteration vector, so
/// every dependence is a direct flow dependence — must yield the same D
/// as the natural form.
LoopNest matrix_multiplication_rewritten(std::int64_t n = 3);

/// The paper's rewritten matvec (L5): xp[i,j] := xp[i-1,j];
/// yp[i,j] := yp[i,j-1] + A[i,j]*xp[i,j].  Same D as matrix_vector.
LoopNest matrix_vector_rewritten(std::int64_t m);

/// 1-D convolution y[i] = sum_j h[j]*x[i-j] on an n x k domain;
/// D = {(0,1) via y, (1,1) via x, (1,0) via h} — same structure as L1.
LoopNest convolution1d(std::int64_t n, std::int64_t k);

/// Uniformized transitive closure (Guibas-Kung-Thompson style 3-nest with
/// the matmul dependence structure); D = {(0,1,0), (1,0,0), (0,0,1)}.
LoopNest transitive_closure(std::int64_t n);

/// Gauss-Seidel / SOR 2-D sweep: A[i,j] := f(A[i-1,j], A[i,j-1]);
/// D = {(1,0), (0,1)}.
LoopNest sor2d(std::int64_t rows, std::int64_t cols);

/// 3-D wavefront stencil: A[i,j,k] := f(A[i-1,j,k], A[i,j-1,k], A[i,j,k-1]);
/// D = {(1,0,0), (0,1,0), (0,0,1)}.
LoopNest wavefront3d(std::int64_t n);

/// wavefront3d after skewing the middle loop by the outer one (the
/// unimodular map (i,j,k) -> (i, i+j, k)): t runs from i+1 to i+n, so the
/// iteration domain is a sheared prism whose t-bounds are affine in i —
/// the symbolic path must slab-decompose it.  Same body, dependences
/// transformed to D = {(1,1,0), (0,1,0), (0,0,1)}.
LoopNest skewed_wavefront3d(std::int64_t n);

/// A 2-nest with D = {(stride,0), (0,stride)}: the dependence lattice has
/// stride^2 residue classes, so the independent-partitioning baseline
/// genuinely parallelizes it — the regime where the paper concedes those
/// methods work well.
LoopNest strided_recurrence(std::int64_t size, std::int64_t stride);

/// 2-D convolution (image filtering), a 4-deep nest:
///   y[i,j] := y[i,j] + h[k,l] * x[i-k, j-l];
/// Six constant dependences spanning all four dimensions — under
/// Π = (1,1,1,1) the projected structure is 3-dimensional with β = 3, so
/// Algorithm 1 needs a grouping vector plus TWO auxiliary vectors (the
/// highest-rank regime the paper's construction supports for n = 4).
LoopNest convolution2d(std::int64_t n, std::int64_t k);

/// Lower-triangular matrix-vector product (triangular iteration domain,
/// j < i — exercises Algorithm 1 on a non-rectangular index set):
///   y[i] := y[i] + L[i,j] * b[j];
/// D = {(1,0) via the b[j] reuse, (0,1) via the y[i] reduction}.
/// (True forward substitution reads x[j] written at iteration (j,*) — a
/// NON-uniform dependence outside the paper's model; analyze_dependences
/// correctly rejects that form.)
LoopNest triangular_matvec(std::int64_t n);

/// Uniformized LU-decomposition update sweep (no pivoting), a 3-deep nest
/// over the shrinking trailing submatrices: k = 0..n, i = k+1..n,
/// j = k+1..n (affine triangular bounds — the symbolic path must
/// slab-decompose the prism).  Pipelined multiplier/pivot-row arrays make
/// every dependence uniform: D = {(0,1,0) via L, (0,0,1) via U, (1,0,0)
/// via the trailing update}.
LoopNest lu_decomposition(std::int64_t n);

/// Banded Floyd-Warshall-style relaxation restricted to |i - j| <= band:
///   A[i,j] := f(A[i-1,j], A[i,j-1], A[i-1,j-1]);
/// the inner bounds are disjunctive — max(0, i-band) <= j <= min(n, i+band)
/// — so the iteration space is a diagonal band through the square.
/// D = {(1,0), (0,1), (1,1)}.
LoopNest floyd_warshall_band(std::int64_t n, std::int64_t band);

/// Pyramid ("tent") stencil: 0 <= j <= min(i, n-i) — the inner extent grows
/// to the midpoint and shrinks back, a genuinely disjunctive upper bound.
///   A[i,j] := f(A[i-1,j], A[i,j-1]);  D = {(1,0), (0,1)}.
LoopNest pyramid_stencil(std::int64_t n);

/// 3-D strided recurrence D = {(s,0,0), (0,s,0), (0,0,s)}: the 3-D analog
/// of strided_recurrence — the group lattice's plane layout with strided
/// shifts (and the dense region growing's multi-seed coverage).
LoopNest strided_recurrence3d(std::int64_t n, std::int64_t stride);

/// Discrete Fourier transform in Horner form (the paper's Section I lists
/// the DFT among the kernels independent partitioning serializes):
///   for k = 0..n-1: for t = 0..n-1:  F[k] := F[k]*w[k] + x[n-1-t];
/// D = {(0,1) via F (and the w[k] reuse), (1,0) via the x reuse} — the same
/// dependence structure as matrix-vector multiplication.
LoopNest dft_horner(std::int64_t n);

}  // namespace workloads
}  // namespace hypart
