#include "workloads/workloads.hpp"

#include "loop/expr.hpp"

namespace hypart {
namespace workloads {

LoopNest example_l1(std::int64_t size) {
  // S1: A[i+1,j+1] := A[i+1,j] + B[i,j];
  // S2: B[i+1,j]   := A[i,j] * 2 + C;     (C is a scalar constant)
  return LoopNestBuilder("L1")
      .loop("i", 0, size)
      .loop("j", 0, size)
      .assign("S1", "A", {idx(0) + 1, idx(1) + 1},
              ref("A", {idx(0) + 1, idx(1)}) + ref("B", {idx(0), idx(1)}))
      .assign("S2", "B", {idx(0) + 1, idx(1)},
              ref("A", {idx(0), idx(1)}) * constant(2.0) + constant(3.0))
      .build();
}

LoopNest matrix_multiplication(std::int64_t n) {
  return LoopNestBuilder("matmul")
      .loop("i", 0, n)
      .loop("j", 0, n)
      .loop("k", 0, n)
      .assign("S", "C", {idx(0), idx(1)},
              ref("C", {idx(0), idx(1)}) + ref("A", {idx(0), idx(2)}) * ref("B", {idx(2), idx(1)}))
      .build();
}

LoopNest matrix_multiplication_rewritten(std::int64_t n) {
  // The paper's (L3): A^(i,j,k) := A^(i,j-1,k); B^(i,j,k) := B^(i-1,j,k);
  // C^(i,j,k) := C^(i,j,k-1) + A^(i,j,k)*B^(i,j,k).
  return LoopNestBuilder("matmul-rewritten")
      .loop("i", 0, n)
      .loop("j", 0, n)
      .loop("k", 0, n)
      .assign("S1", "Ap", {idx(0), idx(1), idx(2)}, ref("Ap", {idx(0), idx(1) - 1, idx(2)}))
      .assign("S2", "Bp", {idx(0), idx(1), idx(2)}, ref("Bp", {idx(0) - 1, idx(1), idx(2)}))
      .assign("S3", "Cp", {idx(0), idx(1), idx(2)},
              ref("Cp", {idx(0), idx(1), idx(2) - 1}) +
                  ref("Ap", {idx(0), idx(1), idx(2)}) * ref("Bp", {idx(0), idx(1), idx(2)}))
      .build();
}

LoopNest matrix_vector_rewritten(std::int64_t m) {
  // The paper's (L5): x^(i,j) := x^(i-1,j); y^(i,j) := y^(i,j-1) + A*x.
  return LoopNestBuilder("matvec-rewritten")
      .loop("i", 1, m)
      .loop("j", 1, m)
      .assign("S1", "xp", {idx(0), idx(1)}, ref("xp", {idx(0) - 1, idx(1)}))
      .assign("S2", "yp", {idx(0), idx(1)},
              ref("yp", {idx(0), idx(1) - 1}) +
                  ref("A", {idx(0), idx(1)}) * ref("xp", {idx(0), idx(1)}))
      .build();
}

LoopNest matrix_vector(std::int64_t m) {
  return LoopNestBuilder("matvec")
      .loop("i", 1, m)
      .loop("j", 1, m)
      .assign("S", "y", {idx(0)},
              ref("y", {idx(0)}) + ref("A", {idx(0), idx(1)}) * ref("x", {idx(1)}))
      .build();
}

LoopNest convolution1d(std::int64_t n, std::int64_t k) {
  return LoopNestBuilder("conv1d")
      .loop("i", 0, n - 1)
      .loop("j", 0, k - 1)
      .assign("S", "y", {idx(0)},
              ref("y", {idx(0)}) + ref("x", {idx(0) - idx(1)}) * ref("h", {idx(1)}))
      .build();
}

LoopNest transitive_closure(std::int64_t n) {
  // Uniformized (Guibas-Kung-Thompson style) closure recurrence; over
  // doubles the and/or pair is modelled by */+, which has the identical
  // dependence structure.
  return LoopNestBuilder("transitive-closure")
      .loop("k", 0, n - 1)
      .loop("i", 0, n - 1)
      .loop("j", 0, n - 1)
      .assign("S", "R", {idx(1), idx(2)},
              ref("R", {idx(1), idx(2)}) + ref("P", {idx(1), idx(0)}) * ref("Q", {idx(0), idx(2)}))
      .build();
}

LoopNest sor2d(std::int64_t rows, std::int64_t cols) {
  return LoopNestBuilder("sor2d")
      .loop("i", 1, rows)
      .loop("j", 1, cols)
      .assign("S", "A", {idx(0), idx(1)},
              (ref("A", {idx(0) - 1, idx(1)}) + ref("A", {idx(0), idx(1) - 1})) * constant(0.5) +
                  constant(0.125))
      .build();
}

LoopNest wavefront3d(std::int64_t n) {
  return LoopNestBuilder("wavefront3d")
      .loop("i", 1, n)
      .loop("j", 1, n)
      .loop("k", 1, n)
      .assign("S", "A", {idx(0), idx(1), idx(2)},
              (ref("A", {idx(0) - 1, idx(1), idx(2)}) + ref("A", {idx(0), idx(1) - 1, idx(2)}) +
               ref("A", {idx(0), idx(1), idx(2) - 1})) *
                  constant(1.0 / 3.0))
      .build();
}

LoopNest skewed_wavefront3d(std::int64_t n) {
  return LoopNestBuilder("skewed-wavefront3d")
      .loop("i", 1, n)
      .loop("t", idx(0) + 1, idx(0) + n)
      .loop("k", 1, n)
      .assign("S", "A", {idx(0), idx(1) - idx(0), idx(2)},
              (ref("A", {idx(0) - 1, idx(1) - idx(0), idx(2)}) +
               ref("A", {idx(0), idx(1) - idx(0) - 1, idx(2)}) +
               ref("A", {idx(0), idx(1) - idx(0), idx(2) - 1})) *
                  constant(1.0 / 3.0))
      .build();
}

LoopNest strided_recurrence(std::int64_t size, std::int64_t stride) {
  return LoopNestBuilder("strided-recurrence")
      .loop("i", 0, size)
      .loop("j", 0, size)
      .assign("S", "A", {idx(0), idx(1)},
              ref("A", {idx(0) - stride, idx(1)}) + ref("A", {idx(0), idx(1) - stride}))
      .build();
}

LoopNest convolution2d(std::int64_t n, std::int64_t k) {
  return LoopNestBuilder("conv2d")
      .loop("i", 0, n - 1)
      .loop("j", 0, n - 1)
      .loop("k", 0, k - 1)
      .loop("l", 0, k - 1)
      .assign("S", "y", {idx(0), idx(1)},
              ref("y", {idx(0), idx(1)}) +
                  ref("h", {idx(2), idx(3)}) * ref("x", {idx(0) - idx(2), idx(1) - idx(3)}))
      .build();
}

LoopNest triangular_matvec(std::int64_t n) {
  return LoopNestBuilder("triangular-matvec")
      .loop("i", 1, n)
      .loop("j", 1, idx(0) - 1)
      .assign("S", "y", {idx(0)},
              ref("y", {idx(0)}) + ref("L", {idx(0), idx(1)}) * ref("b", {idx(1)}))
      .build();
}

LoopNest lu_decomposition(std::int64_t n) {
  // Uniformized right-looking LU update: Lp pipelines the multiplier column
  // along j, Up pipelines the pivot row along i, and the trailing-submatrix
  // update chains along k — the same single-assignment discipline as the
  // paper's rewritten matmul (L3), on a triangular prism domain.
  return LoopNestBuilder("lu")
      .loop("k", 0, n)
      .loop("i", idx(0) + 1, n)
      .loop("j", idx(0) + 1, n)
      .assign("S1", "Lp", {idx(0), idx(1), idx(2)}, ref("Lp", {idx(0), idx(1), idx(2) - 1}))
      .assign("S2", "Up", {idx(0), idx(1), idx(2)}, ref("Up", {idx(0), idx(1) - 1, idx(2)}))
      .assign("S3", "A", {idx(0), idx(1), idx(2)},
              ref("A", {idx(0) - 1, idx(1), idx(2)}) -
                  ref("Lp", {idx(0), idx(1), idx(2)}) * ref("Up", {idx(0), idx(1), idx(2)}))
      .build();
}

LoopNest floyd_warshall_band(std::int64_t n, std::int64_t band) {
  return LoopNestBuilder("fw-band")
      .loop("i", 0, n)
      .loop("j", bmax(AffineExpr(0), AffineExpr::index(0, 1, -band)),
            bmin(AffineExpr(n), AffineExpr::index(0, 1, band)))
      .assign("S", "A", {idx(0), idx(1)},
              (ref("A", {idx(0) - 1, idx(1)}) + ref("A", {idx(0), idx(1) - 1}) +
               ref("A", {idx(0) - 1, idx(1) - 1})) *
                  constant(1.0 / 3.0))
      .build();
}

LoopNest pyramid_stencil(std::int64_t n) {
  return LoopNestBuilder("pyramid")
      .loop("i", 0, n)
      .loop("j", 0, bmin(AffineExpr::index(0), AffineExpr::index(0, -1, n)))
      .assign("S", "A", {idx(0), idx(1)},
              (ref("A", {idx(0) - 1, idx(1)}) + ref("A", {idx(0), idx(1) - 1})) * constant(0.5))
      .build();
}

LoopNest strided_recurrence3d(std::int64_t n, std::int64_t stride) {
  return LoopNestBuilder("strided-recurrence3d")
      .loop("i", 0, n)
      .loop("j", 0, n)
      .loop("k", 0, n)
      .assign("S", "A", {idx(0), idx(1), idx(2)},
              ref("A", {idx(0) - stride, idx(1), idx(2)}) +
                  ref("A", {idx(0), idx(1) - stride, idx(2)}) +
                  ref("A", {idx(0), idx(1), idx(2) - stride}))
      .build();
}

LoopNest dft_horner(std::int64_t n) {
  return LoopNestBuilder("dft-horner")
      .loop("k", 0, n - 1)
      .loop("t", 0, n - 1)
      .assign("S", "F", {idx(0)},
              ref("F", {idx(0)}) * ref("w", {idx(0)}) + ref("x", {-1 * idx(1) + (n - 1)}))
      .build();
}

}  // namespace workloads
}  // namespace hypart
