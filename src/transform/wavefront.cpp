#include "transform/wavefront.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "numeric/rat_matrix.hpp"

namespace hypart {

IntVec WavefrontTransform::apply(const IntVec& point) const {
  IntVec out(u.rows());
  for (std::size_t r = 0; r < u.rows(); ++r) out[r] = dot(u.row(r), point);
  return out;
}

IntVec WavefrontTransform::invert(const IntVec& transformed) const {
  IntVec out(u_inverse.rows());
  for (std::size_t r = 0; r < u_inverse.rows(); ++r)
    out[r] = dot(u_inverse.row(r), transformed);
  return out;
}

std::vector<IntVec> WavefrontTransform::transform_dependences(
    const std::vector<IntVec>& deps) const {
  std::vector<IntVec> out;
  out.reserve(deps.size());
  for (const IntVec& d : deps) out.push_back(apply(d));
  return out;
}

WavefrontTransform make_wavefront_transform(const TimeFunction& pi) {
  const std::size_t n = pi.dimension();
  if (n == 0) throw std::invalid_argument("make_wavefront_transform: empty time function");
  if (content(pi.pi) != 1)
    throw std::invalid_argument(
        "make_wavefront_transform: gcd of the time function's components must be 1 "
        "(no unimodular completion exists for " +
        to_string(pi.pi) + ")");

  // Column-reduce Π (as a 1 x n matrix) to (1, 0, ..., 0): Π · V = e1 with
  // V unimodular.  Then U = V^{-1} has first row Π, and U^{-1} = V.
  IntMat row(1, n);
  for (std::size_t c = 0; c < n; ++c) row.at(0, c) = pi.pi[c];
  HermiteResult h = hermite_normal_form(row);
  // h.h == (g, 0, ..., 0) with g = 1 by the content check.
  if (h.h.at(0, 0) != 1)
    throw std::logic_error("make_wavefront_transform: HNF pivot is not the gcd");

  WavefrontTransform wt;
  wt.pi = pi;
  wt.u_inverse = h.u;  // V
  RatMat v = RatMat::from_int(h.u);
  std::optional<RatMat> vinv = v.inverse();
  if (!vinv) throw std::logic_error("make_wavefront_transform: completion not invertible");
  wt.u = IntMat(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) wt.u.at(r, c) = vinv->at(r, c).to_integer();
  return wt;
}

std::map<std::int64_t, std::vector<IntVec>> wavefront_slices(const WavefrontTransform& wt,
                                                             const ComputationStructure& q) {
  std::map<std::int64_t, std::vector<IntVec>> slices;
  for (const IntVec& v : q.vertices()) {
    IntVec t = wt.apply(v);
    IntVec spatial(t.begin() + 1, t.end());
    slices[t[0]].push_back(std::move(spatial));
  }
  for (auto& [step, pts] : slices) std::sort(pts.begin(), pts.end());
  return slices;
}

std::string wavefront_loop_to_string(const WavefrontTransform& wt,
                                     const ComputationStructure& q,
                                     const std::vector<std::string>& index_names) {
  std::map<std::int64_t, std::vector<IntVec>> slices = wavefront_slices(wt, q);
  std::ostringstream os;
  if (slices.empty()) return "(empty iteration space)\n";

  os << "// wavefront form: U =\n";
  {
    std::istringstream rows(wt.u.to_string());
    std::string line;
    while (std::getline(rows, line)) os << "//   " << line << "\n";
  }
  os << "for t = " << slices.begin()->first << " to " << slices.rbegin()->first
     << "   // hyperplane " << wt.pi.to_string() << " . I = t\n";
  for (const auto& [step, pts] : slices) {
    os << "  t = " << step << ": forall " << pts.size() << " iteration"
       << (pts.size() == 1 ? "" : "s") << " {";
    std::size_t shown = 0;
    for (const IntVec& s : pts) {
      if (shown == 6) {
        os << " ...";
        break;
      }
      // Recover and print the original index point.
      IntVec full(s.size() + 1);
      full[0] = step;
      std::copy(s.begin(), s.end(), full.begin() + 1);
      IntVec original = wt.invert(full);
      os << " ";
      if (!index_names.empty()) {
        os << "(";
        for (std::size_t k = 0; k < original.size(); ++k) {
          if (k) os << ",";
          os << original[k];
        }
        os << ")";
      } else {
        os << to_string(original);
      }
      ++shown;
    }
    os << " }\n";
  }
  return os.str();
}

}  // namespace hypart
