// hypart — wavefront (time-skewing) loop transformation.
//
// A valid time function Π with gcd(Π) = 1 extends to a unimodular matrix
// U whose first row is Π; the coordinate change I' = U·I re-expresses the
// nest with time as the outermost loop:
//
//     for t = t_min .. t_max            // hyperplane Π·I = t
//       forall (s_1..s_{n-1}) in S(t)   // independent iterations of step t
//         body(U^{-1} · (t, s))
//
// This is the loop restructuring a parallelizing compiler performs before
// the partitioning phase; Algorithm 1's projection is exactly the
// spatial part of this transform.  The module computes the completion,
// transforms points and dependences, derives per-step bounds, and
// pretty-prints the transformed nest.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/comp_structure.hpp"
#include "schedule/hyperplane.hpp"

namespace hypart {

struct WavefrontTransform {
  IntMat u;          ///< unimodular, first row = Π
  IntMat u_inverse;  ///< exact integer inverse (|det U| = 1)
  TimeFunction pi;

  /// I' = U·I (first coordinate is the step).
  [[nodiscard]] IntVec apply(const IntVec& point) const;
  /// I = U^{-1}·I'.
  [[nodiscard]] IntVec invert(const IntVec& transformed) const;

  /// Transformed dependence vectors U·d; first component positive for all
  /// valid Π (time strictly advances along every dependence).
  [[nodiscard]] std::vector<IntVec> transform_dependences(
      const std::vector<IntVec>& deps) const;
};

/// Complete Π into a unimodular transform.  Requires gcd of Π's components
/// to be 1 (otherwise no integer unimodular completion exists); throws
/// std::invalid_argument otherwise.
WavefrontTransform make_wavefront_transform(const TimeFunction& pi);

/// The spatial iterations of every time step: step -> sorted spatial
/// coordinate vectors (n-1 entries each).
std::map<std::int64_t, std::vector<IntVec>> wavefront_slices(const WavefrontTransform& wt,
                                                             const ComputationStructure& q);

/// Pretty-print the transformed nest:
///   for t = .. ; forall (s...) in S(t); body(original indices)
std::string wavefront_loop_to_string(const WavefrontTransform& wt,
                                     const ComputationStructure& q,
                                     const std::vector<std::string>& index_names = {});

}  // namespace hypart
