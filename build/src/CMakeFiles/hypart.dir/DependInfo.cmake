
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/independent.cpp" "src/CMakeFiles/hypart.dir/baselines/independent.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/baselines/independent.cpp.o.d"
  "/root/repo/src/codegen/spmd.cpp" "src/CMakeFiles/hypart.dir/codegen/spmd.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/codegen/spmd.cpp.o.d"
  "/root/repo/src/core/json_export.cpp" "src/CMakeFiles/hypart.dir/core/json_export.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/core/json_export.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/hypart.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/exec/interpreter.cpp" "src/CMakeFiles/hypart.dir/exec/interpreter.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/exec/interpreter.cpp.o.d"
  "/root/repo/src/exec/parallel_runtime.cpp" "src/CMakeFiles/hypart.dir/exec/parallel_runtime.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/exec/parallel_runtime.cpp.o.d"
  "/root/repo/src/frontend/lexer.cpp" "src/CMakeFiles/hypart.dir/frontend/lexer.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/frontend/lexer.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "src/CMakeFiles/hypart.dir/frontend/parser.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/frontend/parser.cpp.o.d"
  "/root/repo/src/frontend/printer.cpp" "src/CMakeFiles/hypart.dir/frontend/printer.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/frontend/printer.cpp.o.d"
  "/root/repo/src/graph/comp_structure.cpp" "src/CMakeFiles/hypart.dir/graph/comp_structure.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/graph/comp_structure.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/CMakeFiles/hypart.dir/graph/digraph.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/graph/digraph.cpp.o.d"
  "/root/repo/src/loop/dependence.cpp" "src/CMakeFiles/hypart.dir/loop/dependence.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/loop/dependence.cpp.o.d"
  "/root/repo/src/loop/expr.cpp" "src/CMakeFiles/hypart.dir/loop/expr.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/loop/expr.cpp.o.d"
  "/root/repo/src/loop/index_set.cpp" "src/CMakeFiles/hypart.dir/loop/index_set.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/loop/index_set.cpp.o.d"
  "/root/repo/src/loop/loop_nest.cpp" "src/CMakeFiles/hypart.dir/loop/loop_nest.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/loop/loop_nest.cpp.o.d"
  "/root/repo/src/mapping/baseline_map.cpp" "src/CMakeFiles/hypart.dir/mapping/baseline_map.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/mapping/baseline_map.cpp.o.d"
  "/root/repo/src/mapping/gray.cpp" "src/CMakeFiles/hypart.dir/mapping/gray.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/mapping/gray.cpp.o.d"
  "/root/repo/src/mapping/hypercube_map.cpp" "src/CMakeFiles/hypart.dir/mapping/hypercube_map.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/mapping/hypercube_map.cpp.o.d"
  "/root/repo/src/mapping/other_topologies.cpp" "src/CMakeFiles/hypart.dir/mapping/other_topologies.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/mapping/other_topologies.cpp.o.d"
  "/root/repo/src/mapping/tig.cpp" "src/CMakeFiles/hypart.dir/mapping/tig.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/mapping/tig.cpp.o.d"
  "/root/repo/src/numeric/int_linalg.cpp" "src/CMakeFiles/hypart.dir/numeric/int_linalg.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/numeric/int_linalg.cpp.o.d"
  "/root/repo/src/numeric/rat_matrix.cpp" "src/CMakeFiles/hypart.dir/numeric/rat_matrix.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/numeric/rat_matrix.cpp.o.d"
  "/root/repo/src/numeric/rational.cpp" "src/CMakeFiles/hypart.dir/numeric/rational.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/numeric/rational.cpp.o.d"
  "/root/repo/src/partition/blocks.cpp" "src/CMakeFiles/hypart.dir/partition/blocks.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/partition/blocks.cpp.o.d"
  "/root/repo/src/partition/checkers.cpp" "src/CMakeFiles/hypart.dir/partition/checkers.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/partition/checkers.cpp.o.d"
  "/root/repo/src/partition/grouping.cpp" "src/CMakeFiles/hypart.dir/partition/grouping.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/partition/grouping.cpp.o.d"
  "/root/repo/src/partition/projection.cpp" "src/CMakeFiles/hypart.dir/partition/projection.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/partition/projection.cpp.o.d"
  "/root/repo/src/perf/perf_model.cpp" "src/CMakeFiles/hypart.dir/perf/perf_model.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/perf/perf_model.cpp.o.d"
  "/root/repo/src/perf/table.cpp" "src/CMakeFiles/hypart.dir/perf/table.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/perf/table.cpp.o.d"
  "/root/repo/src/schedule/hyperplane.cpp" "src/CMakeFiles/hypart.dir/schedule/hyperplane.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/schedule/hyperplane.cpp.o.d"
  "/root/repo/src/sim/exec_sim.cpp" "src/CMakeFiles/hypart.dir/sim/exec_sim.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/sim/exec_sim.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/hypart.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/CMakeFiles/hypart.dir/sim/report.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/sim/report.cpp.o.d"
  "/root/repo/src/systolic/systolic.cpp" "src/CMakeFiles/hypart.dir/systolic/systolic.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/systolic/systolic.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/CMakeFiles/hypart.dir/topology/topology.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/topology/topology.cpp.o.d"
  "/root/repo/src/transform/wavefront.cpp" "src/CMakeFiles/hypart.dir/transform/wavefront.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/transform/wavefront.cpp.o.d"
  "/root/repo/src/workloads/workloads.cpp" "src/CMakeFiles/hypart.dir/workloads/workloads.cpp.o" "gcc" "src/CMakeFiles/hypart.dir/workloads/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
