file(REMOVE_RECURSE
  "libhypart.a"
)
