# Empty compiler generated dependencies file for hypart.
# This may be replaced when dependencies are built.
