# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_analyze "/root/repo/build/tools/hypart" "analyze" "/root/repo/examples/programs/sor.loop" "--dim" "2")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_partition "/root/repo/build/tools/hypart" "partition" "/root/repo/examples/programs/sor.loop" "--dim" "2")
set_tests_properties(cli_partition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_map "/root/repo/build/tools/hypart" "map" "/root/repo/examples/programs/sor.loop" "--dim" "2")
set_tests_properties(cli_map PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/hypart" "simulate" "/root/repo/examples/programs/sor.loop" "--dim" "2")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/tools/hypart" "run" "/root/repo/examples/programs/sor.loop" "--dim" "2")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_codegen "/root/repo/build/tools/hypart" "codegen" "/root/repo/examples/programs/sor.loop" "--dim" "2")
set_tests_properties(cli_codegen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_wavefront "/root/repo/build/tools/hypart" "wavefront" "/root/repo/examples/programs/sor.loop" "--dim" "2")
set_tests_properties(cli_wavefront PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_json "/root/repo/build/tools/hypart" "json" "/root/repo/examples/programs/sor.loop" "--dim" "2")
set_tests_properties(cli_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_weighted "/root/repo/build/tools/hypart" "run" "/root/repo/examples/programs/wave.loop" "--dim" "3" "--weighted" "--accounting" "barrier")
set_tests_properties(cli_weighted PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
