# Empty dependencies file for hypart_cli.
# This may be replaced when dependencies are built.
