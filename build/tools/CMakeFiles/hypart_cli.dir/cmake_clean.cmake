file(REMOVE_RECURSE
  "CMakeFiles/hypart_cli.dir/hypart_cli.cpp.o"
  "CMakeFiles/hypart_cli.dir/hypart_cli.cpp.o.d"
  "hypart"
  "hypart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypart_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
