# Empty compiler generated dependencies file for test_loop_nest.
# This may be replaced when dependencies are built.
