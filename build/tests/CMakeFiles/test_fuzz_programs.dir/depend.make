# Empty dependencies file for test_fuzz_programs.
# This may be replaced when dependencies are built.
