file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_programs.dir/test_fuzz_programs.cpp.o"
  "CMakeFiles/test_fuzz_programs.dir/test_fuzz_programs.cpp.o.d"
  "test_fuzz_programs"
  "test_fuzz_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
