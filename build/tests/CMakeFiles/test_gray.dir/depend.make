# Empty dependencies file for test_gray.
# This may be replaced when dependencies are built.
