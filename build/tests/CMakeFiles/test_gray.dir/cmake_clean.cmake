file(REMOVE_RECURSE
  "CMakeFiles/test_gray.dir/test_gray.cpp.o"
  "CMakeFiles/test_gray.dir/test_gray.cpp.o.d"
  "test_gray"
  "test_gray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
