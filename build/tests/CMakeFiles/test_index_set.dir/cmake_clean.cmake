file(REMOVE_RECURSE
  "CMakeFiles/test_index_set.dir/test_index_set.cpp.o"
  "CMakeFiles/test_index_set.dir/test_index_set.cpp.o.d"
  "test_index_set"
  "test_index_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
