# Empty dependencies file for test_index_set.
# This may be replaced when dependencies are built.
