file(REMOVE_RECURSE
  "CMakeFiles/test_checkers.dir/test_checkers.cpp.o"
  "CMakeFiles/test_checkers.dir/test_checkers.cpp.o.d"
  "test_checkers"
  "test_checkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
