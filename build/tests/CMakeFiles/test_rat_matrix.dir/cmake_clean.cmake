file(REMOVE_RECURSE
  "CMakeFiles/test_rat_matrix.dir/test_rat_matrix.cpp.o"
  "CMakeFiles/test_rat_matrix.dir/test_rat_matrix.cpp.o.d"
  "test_rat_matrix"
  "test_rat_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rat_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
