file(REMOVE_RECURSE
  "CMakeFiles/test_hypercube_map.dir/test_hypercube_map.cpp.o"
  "CMakeFiles/test_hypercube_map.dir/test_hypercube_map.cpp.o.d"
  "test_hypercube_map"
  "test_hypercube_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hypercube_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
