# Empty dependencies file for test_hypercube_map.
# This may be replaced when dependencies are built.
