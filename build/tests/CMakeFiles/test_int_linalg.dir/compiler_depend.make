# Empty compiler generated dependencies file for test_int_linalg.
# This may be replaced when dependencies are built.
