file(REMOVE_RECURSE
  "CMakeFiles/test_int_linalg.dir/test_int_linalg.cpp.o"
  "CMakeFiles/test_int_linalg.dir/test_int_linalg.cpp.o.d"
  "test_int_linalg"
  "test_int_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_int_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
