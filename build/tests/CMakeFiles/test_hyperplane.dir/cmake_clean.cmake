file(REMOVE_RECURSE
  "CMakeFiles/test_hyperplane.dir/test_hyperplane.cpp.o"
  "CMakeFiles/test_hyperplane.dir/test_hyperplane.cpp.o.d"
  "test_hyperplane"
  "test_hyperplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hyperplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
