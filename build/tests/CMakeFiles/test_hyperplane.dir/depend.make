# Empty dependencies file for test_hyperplane.
# This may be replaced when dependencies are built.
