file(REMOVE_RECURSE
  "CMakeFiles/test_other_topologies.dir/test_other_topologies.cpp.o"
  "CMakeFiles/test_other_topologies.dir/test_other_topologies.cpp.o.d"
  "test_other_topologies"
  "test_other_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_other_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
