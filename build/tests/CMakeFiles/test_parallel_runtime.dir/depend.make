# Empty dependencies file for test_parallel_runtime.
# This may be replaced when dependencies are built.
