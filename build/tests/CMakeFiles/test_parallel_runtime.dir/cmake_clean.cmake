file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_runtime.dir/test_parallel_runtime.cpp.o"
  "CMakeFiles/test_parallel_runtime.dir/test_parallel_runtime.cpp.o.d"
  "test_parallel_runtime"
  "test_parallel_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
