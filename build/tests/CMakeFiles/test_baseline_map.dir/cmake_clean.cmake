file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_map.dir/test_baseline_map.cpp.o"
  "CMakeFiles/test_baseline_map.dir/test_baseline_map.cpp.o.d"
  "test_baseline_map"
  "test_baseline_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
