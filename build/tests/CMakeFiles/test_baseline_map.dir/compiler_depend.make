# Empty compiler generated dependencies file for test_baseline_map.
# This may be replaced when dependencies are built.
