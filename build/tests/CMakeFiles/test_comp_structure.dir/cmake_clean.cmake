file(REMOVE_RECURSE
  "CMakeFiles/test_comp_structure.dir/test_comp_structure.cpp.o"
  "CMakeFiles/test_comp_structure.dir/test_comp_structure.cpp.o.d"
  "test_comp_structure"
  "test_comp_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comp_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
