# Empty compiler generated dependencies file for test_comp_structure.
# This may be replaced when dependencies are built.
