# Empty compiler generated dependencies file for test_tig.
# This may be replaced when dependencies are built.
