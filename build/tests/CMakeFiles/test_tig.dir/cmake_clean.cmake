file(REMOVE_RECURSE
  "CMakeFiles/test_tig.dir/test_tig.cpp.o"
  "CMakeFiles/test_tig.dir/test_tig.cpp.o.d"
  "test_tig"
  "test_tig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
