# Empty dependencies file for test_exec_sim.
# This may be replaced when dependencies are built.
