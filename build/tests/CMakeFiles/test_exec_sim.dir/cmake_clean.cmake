file(REMOVE_RECURSE
  "CMakeFiles/test_exec_sim.dir/test_exec_sim.cpp.o"
  "CMakeFiles/test_exec_sim.dir/test_exec_sim.cpp.o.d"
  "test_exec_sim"
  "test_exec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
