file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_matmul_grouping.dir/bench_fig6_matmul_grouping.cpp.o"
  "CMakeFiles/bench_fig6_matmul_grouping.dir/bench_fig6_matmul_grouping.cpp.o.d"
  "bench_fig6_matmul_grouping"
  "bench_fig6_matmul_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_matmul_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
