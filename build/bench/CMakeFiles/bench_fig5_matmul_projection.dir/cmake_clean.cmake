file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_matmul_projection.dir/bench_fig5_matmul_projection.cpp.o"
  "CMakeFiles/bench_fig5_matmul_projection.dir/bench_fig5_matmul_projection.cpp.o.d"
  "bench_fig5_matmul_projection"
  "bench_fig5_matmul_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_matmul_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
