# Empty dependencies file for bench_fig5_matmul_projection.
# This may be replaced when dependencies are built.
