file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_independent.dir/bench_baseline_independent.cpp.o"
  "CMakeFiles/bench_baseline_independent.dir/bench_baseline_independent.cpp.o.d"
  "bench_baseline_independent"
  "bench_baseline_independent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_independent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
