# Empty dependencies file for bench_baseline_independent.
# This may be replaced when dependencies are built.
