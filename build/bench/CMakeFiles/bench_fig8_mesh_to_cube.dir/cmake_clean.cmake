file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_mesh_to_cube.dir/bench_fig8_mesh_to_cube.cpp.o"
  "CMakeFiles/bench_fig8_mesh_to_cube.dir/bench_fig8_mesh_to_cube.cpp.o.d"
  "bench_fig8_mesh_to_cube"
  "bench_fig8_mesh_to_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mesh_to_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
