# Empty compiler generated dependencies file for bench_fig8_mesh_to_cube.
# This may be replaced when dependencies are built.
