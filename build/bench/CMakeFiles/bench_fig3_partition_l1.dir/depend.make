# Empty dependencies file for bench_fig3_partition_l1.
# This may be replaced when dependencies are built.
