file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_partition_l1.dir/bench_fig3_partition_l1.cpp.o"
  "CMakeFiles/bench_fig3_partition_l1.dir/bench_fig3_partition_l1.cpp.o.d"
  "bench_fig3_partition_l1"
  "bench_fig3_partition_l1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_partition_l1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
