file(REMOVE_RECURSE
  "CMakeFiles/bench_systolic_compare.dir/bench_systolic_compare.cpp.o"
  "CMakeFiles/bench_systolic_compare.dir/bench_systolic_compare.cpp.o.d"
  "bench_systolic_compare"
  "bench_systolic_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_systolic_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
