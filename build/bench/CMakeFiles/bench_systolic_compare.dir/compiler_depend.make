# Empty compiler generated dependencies file for bench_systolic_compare.
# This may be replaced when dependencies are built.
