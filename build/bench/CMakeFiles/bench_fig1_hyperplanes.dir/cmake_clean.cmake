file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_hyperplanes.dir/bench_fig1_hyperplanes.cpp.o"
  "CMakeFiles/bench_fig1_hyperplanes.dir/bench_fig1_hyperplanes.cpp.o.d"
  "bench_fig1_hyperplanes"
  "bench_fig1_hyperplanes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_hyperplanes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
