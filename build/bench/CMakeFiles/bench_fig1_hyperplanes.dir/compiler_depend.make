# Empty compiler generated dependencies file for bench_fig1_hyperplanes.
# This may be replaced when dependencies are built.
