file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_matvec.dir/bench_table1_matvec.cpp.o"
  "CMakeFiles/bench_table1_matvec.dir/bench_table1_matvec.cpp.o.d"
  "bench_table1_matvec"
  "bench_table1_matvec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_matvec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
