file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_matmul_tig.dir/bench_fig7_matmul_tig.cpp.o"
  "CMakeFiles/bench_fig7_matmul_tig.dir/bench_fig7_matmul_tig.cpp.o.d"
  "bench_fig7_matmul_tig"
  "bench_fig7_matmul_tig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_matmul_tig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
