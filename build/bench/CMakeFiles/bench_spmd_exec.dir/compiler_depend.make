# Empty compiler generated dependencies file for bench_spmd_exec.
# This may be replaced when dependencies are built.
