file(REMOVE_RECURSE
  "CMakeFiles/bench_spmd_exec.dir/bench_spmd_exec.cpp.o"
  "CMakeFiles/bench_spmd_exec.dir/bench_spmd_exec.cpp.o.d"
  "bench_spmd_exec"
  "bench_spmd_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spmd_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
