file(REMOVE_RECURSE
  "CMakeFiles/bench_schedule_search.dir/bench_schedule_search.cpp.o"
  "CMakeFiles/bench_schedule_search.dir/bench_schedule_search.cpp.o.d"
  "bench_schedule_search"
  "bench_schedule_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schedule_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
