# Empty dependencies file for bench_schedule_search.
# This may be replaced when dependencies are built.
