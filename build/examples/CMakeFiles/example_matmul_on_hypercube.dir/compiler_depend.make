# Empty compiler generated dependencies file for example_matmul_on_hypercube.
# This may be replaced when dependencies are built.
