file(REMOVE_RECURSE
  "CMakeFiles/example_matmul_on_hypercube.dir/matmul_on_hypercube.cpp.o"
  "CMakeFiles/example_matmul_on_hypercube.dir/matmul_on_hypercube.cpp.o.d"
  "example_matmul_on_hypercube"
  "example_matmul_on_hypercube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_matmul_on_hypercube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
