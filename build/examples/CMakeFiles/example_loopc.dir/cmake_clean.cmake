file(REMOVE_RECURSE
  "CMakeFiles/example_loopc.dir/loopc.cpp.o"
  "CMakeFiles/example_loopc.dir/loopc.cpp.o.d"
  "example_loopc"
  "example_loopc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_loopc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
