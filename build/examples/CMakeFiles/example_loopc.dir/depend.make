# Empty dependencies file for example_loopc.
# This may be replaced when dependencies are built.
