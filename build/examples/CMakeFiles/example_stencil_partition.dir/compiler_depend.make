# Empty compiler generated dependencies file for example_stencil_partition.
# This may be replaced when dependencies are built.
