file(REMOVE_RECURSE
  "CMakeFiles/example_stencil_partition.dir/stencil_partition.cpp.o"
  "CMakeFiles/example_stencil_partition.dir/stencil_partition.cpp.o.d"
  "example_stencil_partition"
  "example_stencil_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stencil_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
