file(REMOVE_RECURSE
  "CMakeFiles/example_compare_mappings.dir/compare_mappings.cpp.o"
  "CMakeFiles/example_compare_mappings.dir/compare_mappings.cpp.o.d"
  "example_compare_mappings"
  "example_compare_mappings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compare_mappings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
