# Empty dependencies file for example_compare_mappings.
# This may be replaced when dependencies are built.
