# Empty dependencies file for example_matvec_table1.
# This may be replaced when dependencies are built.
