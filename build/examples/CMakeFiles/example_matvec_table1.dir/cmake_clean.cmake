file(REMOVE_RECURSE
  "CMakeFiles/example_matvec_table1.dir/matvec_table1.cpp.o"
  "CMakeFiles/example_matvec_table1.dir/matvec_table1.cpp.o.d"
  "example_matvec_table1"
  "example_matvec_table1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_matvec_table1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
