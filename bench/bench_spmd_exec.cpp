// Ablation A8 — semantic validation at scale: distributed (message-passing)
// execution equals sequential execution for every workload, plus the cost of
// the interpreters and the volume of value traffic vs the analytic
// interblock-arc counts.
#include "bench_common.hpp"

#include <memory>

#include "exec/interpreter.hpp"
#include "exec/parallel_runtime.hpp"
#include "mapping/hypercube_map.hpp"
#include "perf/table.hpp"
#include "sim/report.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

struct Pieces {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
  TaskInteractionGraph tig;
  TimeFunction tf;
  DependenceInfo deps;
  LoopNest nest;

  explicit Pieces(LoopNest n) : nest(std::move(n)) {
    deps = analyze_dependences(nest);
    IndexSet is(nest);
    q = std::make_unique<ComputationStructure>(is.points(), deps.distance_vectors());
    auto found = search_time_function(*q);
    tf = *found;
    ps = std::make_unique<ProjectedStructure>(*q, tf);
    grouping = Grouping::compute(*ps);
    partition = Partition::build(*q, grouping);
    tig = TaskInteractionGraph::from_partition(*q, partition, grouping);
  }
};

void report() {
  bench::banner("Ablation A8: distributed execution == sequential (all workloads)");
  TextTable t({"workload", "iterations", "procs", "interp equal", "threads equal", "elements",
               "value msgs", "halo loads", "mean utilization"});
  auto add = [&](LoopNest nest, unsigned dim) {
    Pieces p(std::move(nest));
    Mapping map = map_to_hypercube(p.tig, dim).mapping;
    ArrayStore seq = run_sequential(p.nest);
    DistributedResult dist =
        run_distributed(p.nest, *p.q, p.tf, p.partition, map, p.deps);
    EquivalenceReport eq = compare_stores(seq, dist.written);
    // And once more on real OS threads with blocking message passing.
    ParallelRunResult par = run_parallel(p.nest, *p.q, p.tf, p.partition, map, p.deps);
    EquivalenceReport eq_par = compare_stores(seq, par.written);
    UtilizationReport util = processor_utilization(*p.q, p.tf, p.partition, map);
    t.row(p.nest.name(), p.q->vertices().size(), std::size_t{1} << dim,
          eq.equal ? "YES" : "NO", eq_par.equal ? "YES" : "NO", eq.compared,
          dist.stats.value_messages, dist.stats.halo_loads, util.mean_utilization);
  };
  add(workloads::example_l1(15), 2);
  add(workloads::matrix_vector(32), 3);
  add(workloads::matrix_multiplication(9), 3);
  add(workloads::sor2d(24, 24), 3);
  add(workloads::convolution1d(48, 16), 2);
  add(workloads::wavefront3d(8), 3);
  add(workloads::transitive_closure(8), 3);
  add(workloads::strided_recurrence(20, 2), 2);
  std::printf("%s", t.to_string().c_str());
  std::printf("\nEvery row must read YES: the Gray-mapped hyperplane execution with\n"
              "explicit value messages reproduces sequential semantics exactly.\n");
}

void bm_sequential_exec(benchmark::State& state) {
  LoopNest nest = workloads::sor2d(state.range(0), state.range(0));
  for (auto _ : state) {
    ArrayStore s = run_sequential(nest);
    benchmark::DoNotOptimize(s);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_sequential_exec)->Arg(16)->Arg(32)->Arg(64)->Complexity()
    ->Unit(benchmark::kMillisecond);

void bm_distributed_exec(benchmark::State& state) {
  Pieces p(workloads::sor2d(state.range(0), state.range(0)));
  Mapping map = map_to_hypercube(p.tig, 3).mapping;
  for (auto _ : state) {
    DistributedResult r = run_distributed(p.nest, *p.q, p.tf, p.partition, map, p.deps);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_distributed_exec)->Arg(16)->Arg(32)->Arg(64)->Complexity()
    ->Unit(benchmark::kMillisecond);

}  // namespace

HYPART_BENCH_MAIN(report)
