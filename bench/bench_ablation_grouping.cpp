// Ablation A2 — grouping-vector / auxiliary-vector choice and group size r:
// Algorithm 1 breaks ties "arbitrarily"; this bench quantifies how much the
// choice matters for interblock communication, and compares grouped blocks
// against one-line-per-block partitioning (the "no grouping" strawman).
#include "bench_common.hpp"

#include <memory>

#include "partition/blocks.hpp"
#include "partition/checkers.hpp"
#include "perf/table.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

void sweep_grouping_vectors(const LoopNest& nest, const IntVec& pi) {
  auto q = std::make_unique<ComputationStructure>(ComputationStructure::from_loop(nest));
  ProjectedStructure ps(*q, TimeFunction{pi});
  std::printf("\n%s, Pi=%s: %zu projected points\n", nest.name().c_str(),
              to_string(pi).c_str(), ps.point_count());

  // Strawman: each projection line its own block.
  std::size_t singleton_interblock = 0;
  q->for_each_arc([&](const IntVec& a, const IntVec& b, std::size_t) {
    if (ps.point_of(a) != ps.point_of(b)) ++singleton_interblock;
  });

  TextTable t({"grouping vector", "r", "groups", "interblock arcs", "vs no grouping"});
  const std::vector<IntVec>& pdeps = ps.projected_deps_scaled();
  std::int64_t rmax = 1;
  for (std::size_t k = 0; k < pdeps.size(); ++k)
    rmax = std::max(rmax, ps.replication_factor(k));
  for (std::size_t k = 0; k < pdeps.size(); ++k) {
    if (is_zero(pdeps[k]) || ps.replication_factor(k) != rmax) continue;
    GroupingOptions opts;
    opts.grouping_vector = k;
    Grouping g = Grouping::compute(ps, opts);
    Partition p = Partition::build(*q, g);
    PartitionStats stats = compute_partition_stats(*q, p);
    double ratio = singleton_interblock
                       ? static_cast<double>(stats.interblock_arcs) /
                             static_cast<double>(singleton_interblock)
                       : 0.0;
    t.row("d" + std::to_string(k + 1) + "^p = " + to_string(ps.projected_dep_rational(k)),
          g.group_size_r(), g.group_count(), stats.interblock_arcs, ratio);
  }
  t.row("(no grouping: 1 line per block)", 1, ps.point_count(), singleton_interblock, 1.0);
  std::printf("%s", t.to_string().c_str());
}

void report() {
  bench::banner("Ablation A2: grouping-vector choice & grouping benefit");
  sweep_grouping_vectors(workloads::example_l1(7), {1, 1});
  sweep_grouping_vectors(workloads::matrix_multiplication(7), {1, 1, 1});
  sweep_grouping_vectors(workloads::matrix_vector(32), {1, 1});
  sweep_grouping_vectors(workloads::convolution1d(32, 16), {1, 1});
  std::printf(
      "\nReading: grouping r lines per block cuts interblock traffic roughly\n"
      "in half versus one-line blocks (dependences along the grouping vector\n"
      "become local), independent of which maximal-r vector is chosen.\n");
}

void bm_grouping_l1(benchmark::State& state) {
  auto q = std::make_unique<ComputationStructure>(
      ComputationStructure::from_loop(workloads::example_l1(state.range(0))));
  ProjectedStructure ps(*q, TimeFunction{{1, 1}});
  for (auto _ : state) {
    Grouping g = Grouping::compute(ps);
    benchmark::DoNotOptimize(g);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_grouping_l1)->Arg(15)->Arg(31)->Arg(63)->Arg(127)->Complexity();

void bm_stats_l1(benchmark::State& state) {
  auto q = std::make_unique<ComputationStructure>(
      ComputationStructure::from_loop(workloads::example_l1(state.range(0))));
  ProjectedStructure ps(*q, TimeFunction{{1, 1}});
  Grouping g = Grouping::compute(ps);
  Partition p = Partition::build(*q, g);
  for (auto _ : state) {
    PartitionStats s = compute_partition_stats(*q, p);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(bm_stats_l1)->Arg(31)->Arg(63);

}  // namespace

HYPART_BENCH_MAIN(report)
