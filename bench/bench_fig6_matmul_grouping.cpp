// Fig. 6 — grouping the projected points of the 4x4x4 matrix multiplication.
//
// Reproduces the paper's exact grouping: grouping vector d_A^p, auxiliary
// d_C^p, base vertex (-1,-1,2) -> 17 groups of size <= 3, and compares it
// with the library's default (lexicographic-seed) grouping.
#include "bench_common.hpp"

#include "partition/blocks.hpp"
#include "partition/checkers.hpp"
#include "perf/table.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

GroupingOptions paper_options(const ProjectedStructure& ps) {
  GroupingOptions opts;
  std::vector<std::size_t> aux;
  const std::vector<IntVec>& pdeps = ps.projected_deps_scaled();
  for (std::size_t k = 0; k < pdeps.size(); ++k) {
    if (pdeps[k] == IntVec{-1, 2, -1}) opts.grouping_vector = k;   // d_A^p
    if (pdeps[k] == IntVec{-1, -1, 2}) aux.push_back(k);           // d_C^p
  }
  opts.auxiliary_vectors = aux;
  opts.seed_policy = SeedPolicy::ExplicitBases;
  opts.explicit_bases = {{-3, -3, 6}};  // the paper's base vertex (-1,-1,2)
  return opts;
}

void describe(const char* label, const ComputationStructure& q,
              const Grouping& g) {
  Partition part = Partition::build(q, g);
  PartitionStats stats = compute_partition_stats(q, part);
  std::printf("%s: r=%lld, groups=%zu, interblock=%zu/%zu, %s\n", label,
              static_cast<long long>(g.group_size_r()), g.group_count(), stats.interblock_arcs,
              stats.total_arcs, check_theorem2(g).to_string().c_str());
  std::size_t full = 0, partial = 0;
  for (const Group& grp : g.groups()) (grp.size() == 3 ? full : partial)++;
  std::printf("  full groups (3 points): %zu, boundary groups: %zu\n", full, partial);
}

void report() {
  bench::banner("Fig. 6: grouping the matrix-multiplication projected points");

  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication());
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});

  Grouping paper = Grouping::compute(ps, paper_options(ps));
  describe("paper seed (Fig. 6, expects 17 groups)", q, paper);

  TextTable t({"group", "size", "base (rational)", "lattice (a, b)"});
  for (std::size_t i = 0; i < paper.group_count(); ++i) {
    const Group& grp = paper.groups()[i];
    RatVec base(grp.base.size());
    for (std::size_t c = 0; c < grp.base.size(); ++c)
      base[c] = Rational(grp.base[c], ps.scale());
    t.row("G" + std::to_string(i + 1), grp.size(), to_string(base), to_string(grp.lattice));
  }
  std::printf("%s", t.to_string().c_str());

  Grouping dflt = Grouping::compute(ps);
  describe("default lexicographic seed", q, dflt);
}

void bm_grouping_matmul(benchmark::State& state) {
  ComputationStructure q =
      ComputationStructure::from_loop(workloads::matrix_multiplication(state.range(0)));
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  for (auto _ : state) {
    Grouping g = Grouping::compute(ps);
    benchmark::DoNotOptimize(g);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_grouping_matmul)->Arg(3)->Arg(7)->Arg(11)->Arg(15)->Complexity();

void bm_block_build_matmul(benchmark::State& state) {
  ComputationStructure q =
      ComputationStructure::from_loop(workloads::matrix_multiplication(state.range(0)));
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  Grouping g = Grouping::compute(ps);
  for (auto _ : state) {
    Partition p = Partition::build(q, g);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(bm_block_build_matmul)->Arg(3)->Arg(7)->Arg(11);

}  // namespace

HYPART_BENCH_MAIN(report)
