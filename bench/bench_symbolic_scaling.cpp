// Symbolic-vs-dense scaling — the point of the IterSpace refactor.
//
// Part 1 runs the full pipeline in verify mode (symbolic and dense paths
// both executed; run_pipeline throws on any disagreement) at sizes the
// dense path can still materialize — on the rectangular sor2d AND on the
// affine (slab-decomposed) triangular_matvec.  Part 2 sweeps the symbolic
// path far past the dense ceiling: with the group lattice (PR 5) the
// full pipeline — grouping, mapping, theorem checks, and the simulated
// execution — runs sor2d past 1e7 projection lines at flat peak RSS, and
// the grouping+mapping stages alone (O(slabs + deps) closed forms, no
// per-line work) reach 1e8 lines in microseconds.
//
// Only the symbolic sweeps route metrics into the shared registry, so the
// HYPART_BENCH_METRICS dump must report pipeline.points_materialized = 0
// AND pipeline.groups_materialized = 0; CI fails the build if not (see
// .github/workflows/ci.yml).
#include "bench_common.hpp"

#include <sys/resource.h>

#include <chrono>

#include "core/pipeline.hpp"
#include "loop/iter_space.hpp"
#include "mapping/hypercube_map.hpp"
#include "partition/group_lattice.hpp"
#include "perf/table.hpp"
#include "schedule/hyperplane.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

PipelineConfig base_config() {
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1};
  cfg.cube_dim = 3;
  return cfg;
}

/// Peak RSS of the process so far, in MiB (ru_maxrss is KiB on Linux).
/// A high-water mark: if it stays flat while N grows 64x, the symbolic
/// path's memory is independent of N.
double peak_rss_mib() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

/// Projected-line count regardless of grouping backend (the lattice path
/// leaves `projected` null).
std::uint64_t lines_of(const PipelineResult& r) {
  return r.lattice ? r.lattice->line_count() : r.projected->point_count();
}

std::uint64_t blocks_of(const PipelineResult& r) {
  return r.lattice ? r.lattice->group_count()
                   : static_cast<std::uint64_t>(r.block_sizes.size());
}

void verify_agreement() {
  std::printf("\nVerify mode (dense and symbolic both run; any disagreement throws):\n");
  TextTable t({"N", "iterations", "blocks", "interblock", "steps", "T_exec"});
  for (std::int64_t n : {16, 32, 64, 128}) {
    PipelineConfig cfg = base_config();
    cfg.space_mode = SpaceMode::Verify;
    PipelineResult r = run_pipeline(workloads::sor2d(n, n), cfg);
    t.row(n, r.iteration_count(), r.block_sizes.size(), r.stats.interblock_arcs,
          static_cast<std::uint64_t>(r.sim.steps), r.sim.time);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("all sizes agree (verify mode raises on any symbolic/dense mismatch)\n");
}

void symbolic_sweep() {
  std::printf("\nSymbolic-only sweep, full pipeline incl. simulation (sor2d NxN; "
              "dense ceiling is roughly N=512):\n");
  TextTable t({"N", "iterations", "lines", "blocks", "steps", "T_exec", "messages", "peakRSS_MiB"});
  for (std::int64_t n : {256, 4096, 65536, 1048576, 8388608}) {
    PipelineConfig cfg = base_config();
    cfg.space_mode = SpaceMode::Symbolic;
    cfg.obs = bench::obs_context();
    PipelineResult r = run_pipeline(workloads::sor2d(n, n), cfg);
    t.row(n, r.iteration_count(), lines_of(r), blocks_of(r),
          static_cast<std::uint64_t>(r.sim.steps), r.sim.time,
          static_cast<std::uint64_t>(r.sim.messages), peak_rss_mib());
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("N=8388608 is ~7.0e13 iterations over 1.7e7 projection lines; the flat\n"
              "peakRSS column is the group lattice at work (no points, no groups).\n");
}

void triangular_verify() {
  std::printf("\nAffine domain, verify mode (triangular_matvec, j < i):\n");
  TextTable t({"N", "iterations", "slabs", "blocks", "steps", "T_exec"});
  for (std::int64_t n : {16, 32, 64, 128}) {
    PipelineConfig cfg = base_config();
    cfg.space_mode = SpaceMode::Verify;
    PipelineResult r = run_pipeline(workloads::triangular_matvec(n), cfg);
    t.row(n, r.iteration_count(), static_cast<std::uint64_t>(r.space->slab_count()),
          r.block_sizes.size(), static_cast<std::uint64_t>(r.sim.steps), r.sim.time);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("all sizes agree (verify mode raises on any symbolic/dense mismatch)\n");
}

void triangular_sweep() {
  std::printf("\nAffine symbolic-only sweep (triangular_matvec, ~N^2/2 points):\n");
  TextTable t({"N", "iterations", "slabs", "lines", "blocks", "steps", "T_exec", "peakRSS_MiB"});
  for (std::int64_t n : {256, 4096, 65536, 1048576}) {
    PipelineConfig cfg = base_config();
    cfg.space_mode = SpaceMode::Symbolic;
    cfg.obs = bench::obs_context();
    PipelineResult r = run_pipeline(workloads::triangular_matvec(n), cfg);
    t.row(n, r.iteration_count(), static_cast<std::uint64_t>(r.space->slab_count()),
          lines_of(r), blocks_of(r), static_cast<std::uint64_t>(r.sim.steps), r.sim.time,
          peak_rss_mib());
  }
  std::printf("%s", t.to_string().c_str());
}

void closure_sweep() {
  // The classes PR 8's lattice extensions admit: one 3-D nest (plane
  // layout), one strided chain (residue-class sublattices), and one
  // disjunctive-bound nest (slab splitting on the comparison hyperplane).
  // All three route metrics into the shared registry, so the CI gate
  // (points_materialized == 0 AND groups_materialized == 0) covers them.
  std::printf("\nClosure sweep (3-D plane lattice / strided residue chains / "
              "disjunctive bounds), full pipeline:\n");
  TextTable t({"workload", "N", "iterations", "lines", "blocks", "steps", "T_exec",
               "peakRSS_MiB"});
  auto run_case = [&](const char* name, std::int64_t n, const LoopNest& nest, IntVec pi) {
    PipelineConfig cfg;
    cfg.time_function = std::move(pi);
    cfg.cube_dim = 3;
    cfg.space_mode = SpaceMode::Symbolic;
    cfg.obs = bench::obs_context();
    PipelineResult r = run_pipeline(nest, cfg);
    t.row(name, static_cast<std::uint64_t>(n), r.iteration_count(), lines_of(r), blocks_of(r),
          static_cast<std::uint64_t>(r.sim.steps), r.sim.time, peak_rss_mib());
  };
  for (std::int64_t n : {64, 512, 2048})
    run_case("wavefront3d", n, workloads::wavefront3d(n), IntVec{1, 1, 1});
  for (std::int64_t n : {4096, 65536, 1048576})
    run_case("strided_recurrence s=3", n, workloads::strided_recurrence(n, 3), IntVec{1, 1});
  for (std::int64_t n : {4096, 65536, 1048576})
    run_case("pyramid_stencil", n, workloads::pyramid_stencil(n), IntVec{1, 1});
  std::printf("%s", t.to_string().c_str());
  std::printf("wavefront3d N=2048 is ~8.6e9 iterations (past the dense ceiling) on the\n"
              "2-D plane lattice; the strided and disjunctive sweeps stay O(lines).\n");
}

void grouping_mapping_sweep() {
  std::printf("\nGrouping + mapping only (closed forms; no per-line pass, no simulation):\n");
  TextTable t({"N", "lines", "groups", "r", "procs", "build+map_us", "peakRSS_MiB"});
  for (std::int64_t n : {1'000'000, 10'000'000, 50'000'000}) {
    IterSpace space = IterSpace::from_nest(workloads::sor2d(n, n));
    TimeFunction tf;
    tf.pi = IntVec{1, 1};
    auto t0 = std::chrono::steady_clock::now();
    std::optional<GroupLattice> gl = GroupLattice::build(space, tf);
    if (!gl) {
      std::printf("  N=%lld: lattice gate refused (unexpected)\n", static_cast<long long>(n));
      continue;
    }
    LatticeHypercubeMapping lm = map_to_hypercube(*gl, 3);
    auto t1 = std::chrono::steady_clock::now();
    double us = std::chrono::duration<double, std::micro>(t1 - t0).count();
    t.row(n, gl->line_count(), gl->group_count(), gl->group_size_r(), lm.processor_count, us,
          peak_rss_mib());
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("N=50000000 is ~1e8 projection lines; grouping and Algorithm 2 are\n"
              "O(slabs + deps) — time and memory do not grow with N.\n");
}

void report() {
  bench::banner("Symbolic IterSpace scaling (dense parity, then past the ceiling)");
  verify_agreement();
  symbolic_sweep();
  triangular_verify();
  triangular_sweep();
  closure_sweep();
  grouping_mapping_sweep();
}

void bm_dense_pipeline(benchmark::State& state) {
  PipelineConfig cfg = base_config();
  LoopNest nest = workloads::sor2d(state.range(0), state.range(0));
  for (auto _ : state) {
    PipelineResult r = run_pipeline(nest, cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_dense_pipeline)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Complexity()->Unit(benchmark::kMillisecond);

void bm_symbolic_pipeline(benchmark::State& state) {
  PipelineConfig cfg = base_config();
  cfg.space_mode = SpaceMode::Symbolic;
  LoopNest nest = workloads::sor2d(state.range(0), state.range(0));
  for (auto _ : state) {
    PipelineResult r = run_pipeline(nest, cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_symbolic_pipeline)->Arg(32)->Arg(256)->Arg(4096)->Arg(65536)
    ->Complexity()->Unit(benchmark::kMillisecond);

void bm_symbolic_triangular(benchmark::State& state) {
  PipelineConfig cfg = base_config();
  cfg.space_mode = SpaceMode::Symbolic;
  LoopNest nest = workloads::triangular_matvec(state.range(0));
  for (auto _ : state) {
    PipelineResult r = run_pipeline(nest, cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_symbolic_triangular)->Arg(32)->Arg(256)->Arg(4096)->Arg(65536)
    ->Complexity()->Unit(benchmark::kMillisecond);

// Grouping + mapping alone: the stages the group lattice turns into
// closed forms.  Dense-comparable sizes and far beyond — complexity is
// O(slabs + deps), so the timings should be flat in N.
void bm_lattice_group_map(benchmark::State& state) {
  IterSpace space = IterSpace::from_nest(workloads::sor2d(state.range(0), state.range(0)));
  TimeFunction tf;
  tf.pi = IntVec{1, 1};
  for (auto _ : state) {
    std::optional<GroupLattice> gl = GroupLattice::build(space, tf);
    LatticeHypercubeMapping lm = map_to_hypercube(*gl, 3);
    benchmark::DoNotOptimize(lm);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_lattice_group_map)->Arg(256)->Arg(65536)->Arg(1 << 24)->Arg(50'000'000)
    ->Complexity()->Unit(benchmark::kMicrosecond);

}  // namespace

HYPART_BENCH_MAIN(report)
