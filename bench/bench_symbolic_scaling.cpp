// Symbolic-vs-dense scaling — the point of the IterSpace refactor.
//
// Part 1 runs the full pipeline in verify mode (symbolic and dense paths
// both executed; run_pipeline throws on any disagreement) at sizes the
// dense path can still materialize — on the rectangular sor2d AND on the
// affine (slab-decomposed) triangular_matvec.  Part 2 sweeps the symbolic
// path far past the dense ceiling: sor2d at N = 65536 is ~4.3e9 iterations
// — about 100x beyond the largest practical dense run — yet partitions in
// time proportional to the 2N-1 projected lines; triangular_matvec at the
// same N is ~2.1e9 iterations over 65535 slabs.
//
// Only the symbolic sweeps route metrics into the shared registry, so the
// HYPART_BENCH_METRICS dump must report pipeline.points_materialized = 0
// and a nonzero pipeline.slabs; CI fails the build if not (see
// .github/workflows/ci.yml).
#include "bench_common.hpp"

#include "core/pipeline.hpp"
#include "perf/table.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

PipelineConfig base_config() {
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1};
  cfg.cube_dim = 3;
  return cfg;
}

void verify_agreement() {
  std::printf("\nVerify mode (dense and symbolic both run; any disagreement throws):\n");
  TextTable t({"N", "iterations", "blocks", "interblock", "steps", "T_exec"});
  for (std::int64_t n : {16, 32, 64, 128}) {
    PipelineConfig cfg = base_config();
    cfg.space_mode = SpaceMode::Verify;
    PipelineResult r = run_pipeline(workloads::sor2d(n, n), cfg);
    t.row(n, r.iteration_count(), r.block_sizes.size(), r.stats.interblock_arcs,
          static_cast<std::uint64_t>(r.sim.steps), r.sim.time);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("all sizes agree (verify mode raises on any symbolic/dense mismatch)\n");
}

void symbolic_sweep() {
  std::printf("\nSymbolic-only sweep (sor2d NxN; dense ceiling is roughly N=512):\n");
  TextTable t({"N", "iterations", "lines", "blocks", "steps", "T_exec", "messages"});
  for (std::int64_t n : {256, 1024, 4096, 16384, 65536}) {
    PipelineConfig cfg = base_config();
    cfg.space_mode = SpaceMode::Symbolic;
    cfg.obs = bench::obs_context();
    PipelineResult r = run_pipeline(workloads::sor2d(n, n), cfg);
    t.row(n, r.iteration_count(), r.projected->point_count(), r.block_sizes.size(),
          static_cast<std::uint64_t>(r.sim.steps), r.sim.time,
          static_cast<std::uint64_t>(r.sim.messages));
  }
  std::printf("%s", t.to_string().c_str());
}

void triangular_verify() {
  std::printf("\nAffine domain, verify mode (triangular_matvec, j < i):\n");
  TextTable t({"N", "iterations", "slabs", "blocks", "steps", "T_exec"});
  for (std::int64_t n : {16, 32, 64, 128}) {
    PipelineConfig cfg = base_config();
    cfg.space_mode = SpaceMode::Verify;
    PipelineResult r = run_pipeline(workloads::triangular_matvec(n), cfg);
    t.row(n, r.iteration_count(), static_cast<std::uint64_t>(r.space->slab_count()),
          r.block_sizes.size(), static_cast<std::uint64_t>(r.sim.steps), r.sim.time);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("all sizes agree (verify mode raises on any symbolic/dense mismatch)\n");
}

void triangular_sweep() {
  std::printf("\nAffine symbolic-only sweep (triangular_matvec, ~N^2/2 points):\n");
  TextTable t({"N", "iterations", "slabs", "lines", "blocks", "steps", "T_exec"});
  for (std::int64_t n : {256, 1024, 4096, 16384, 65536}) {
    PipelineConfig cfg = base_config();
    cfg.space_mode = SpaceMode::Symbolic;
    cfg.obs = bench::obs_context();
    PipelineResult r = run_pipeline(workloads::triangular_matvec(n), cfg);
    t.row(n, r.iteration_count(), static_cast<std::uint64_t>(r.space->slab_count()),
          r.projected->point_count(), r.block_sizes.size(),
          static_cast<std::uint64_t>(r.sim.steps), r.sim.time);
  }
  std::printf("%s", t.to_string().c_str());
}

void report() {
  bench::banner("Symbolic IterSpace scaling (dense parity, then past the ceiling)");
  verify_agreement();
  symbolic_sweep();
  triangular_verify();
  triangular_sweep();
}

void bm_dense_pipeline(benchmark::State& state) {
  PipelineConfig cfg = base_config();
  LoopNest nest = workloads::sor2d(state.range(0), state.range(0));
  for (auto _ : state) {
    PipelineResult r = run_pipeline(nest, cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_dense_pipeline)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Complexity()->Unit(benchmark::kMillisecond);

void bm_symbolic_pipeline(benchmark::State& state) {
  PipelineConfig cfg = base_config();
  cfg.space_mode = SpaceMode::Symbolic;
  LoopNest nest = workloads::sor2d(state.range(0), state.range(0));
  for (auto _ : state) {
    PipelineResult r = run_pipeline(nest, cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_symbolic_pipeline)->Arg(32)->Arg(256)->Arg(4096)->Arg(65536)
    ->Complexity()->Unit(benchmark::kMillisecond);

void bm_symbolic_triangular(benchmark::State& state) {
  PipelineConfig cfg = base_config();
  cfg.space_mode = SpaceMode::Symbolic;
  LoopNest nest = workloads::triangular_matvec(state.range(0));
  for (auto _ : state) {
    PipelineResult r = run_pipeline(nest, cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_symbolic_triangular)->Arg(32)->Arg(256)->Arg(4096)->Arg(65536)
    ->Complexity()->Unit(benchmark::kMillisecond);

}  // namespace

HYPART_BENCH_MAIN(report)
