// Figs. 4 & 5 — computational structure and projected structure of the
// 4x4x4 matrix multiplication (Example 2), Π = (1,1,1).
//
// Reproduces: the dependence matrix columns (0,1,0),(1,0,0),(0,0,1), the
// 37 projected points, and the projected dependence vectors
// (-1/3,2/3,-1/3), (2/3,-1/3,-1/3), (-1/3,-1/3,2/3) with r = 3 and beta = 2.
#include "bench_common.hpp"

#include "partition/projection.hpp"
#include "perf/table.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

void report() {
  bench::banner("Figs. 4-5: matrix multiplication structure & projection, Pi=(1,1,1)");

  LoopNest mm = workloads::matrix_multiplication();
  std::printf("%s\n", mm.to_string().c_str());

  ComputationStructure q = ComputationStructure::from_loop(mm);
  std::printf("|J^3| = %zu iterations, dependence matrix columns:\n", q.vertices().size());
  for (const IntVec& d : q.dependences()) std::printf("  %s\n", to_string(d).c_str());

  TimeFunction tf{{1, 1, 1}};
  ProjectedStructure ps(q, tf);
  std::printf("\nprojected points |V^p| = %zu (paper: 37)\n", ps.point_count());
  std::printf("beta = rank(mat(D^p)) = %zu (paper: 2)\n", ps.projected_rank());

  TextTable t({"dependence", "projected (D^p)", "r_i"});
  for (std::size_t k = 0; k < q.dependences().size(); ++k)
    t.row(to_string(q.dependences()[k]), to_string(ps.projected_dep_rational(k)),
          ps.replication_factor(k));
  std::printf("%s", t.to_string().c_str());

  // Line populations: the 37 projection lines and how many iterations each
  // carries (sums to 64).
  std::size_t total = 0;
  std::size_t max_pop = 0;
  for (std::size_t i = 0; i < ps.point_count(); ++i) {
    total += ps.line_population(i);
    max_pop = std::max(max_pop, ps.line_population(i));
  }
  std::printf("line populations sum to %zu (= |J^3|), longest line = %zu (main diagonal)\n",
              total, max_pop);
}

void bm_matmul_projection(benchmark::State& state) {
  ComputationStructure q =
      ComputationStructure::from_loop(workloads::matrix_multiplication(state.range(0)));
  TimeFunction tf{{1, 1, 1}};
  for (auto _ : state) {
    ProjectedStructure ps(q, tf);
    benchmark::DoNotOptimize(ps);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_matmul_projection)->Arg(3)->Arg(7)->Arg(11)->Arg(15)->Complexity();

void bm_matmul_structure(benchmark::State& state) {
  LoopNest mm = workloads::matrix_multiplication(state.range(0));
  for (auto _ : state) {
    ComputationStructure q = ComputationStructure::from_loop(mm);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(bm_matmul_structure)->Arg(3)->Arg(7)->Arg(11);

void bm_projected_rank(benchmark::State& state) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication(3));
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  for (auto _ : state) {
    std::size_t r = ps.projected_rank();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(bm_projected_rank);

}  // namespace

HYPART_BENCH_MAIN(report)
