// hypart::serve — plan-service cache behaviour and request latency.
//
// Report phase (deterministic, baseline-gated): an in-process PlanService
// wired to bench::metrics() handles a scripted request mix — two renamed
// streams over two sizes and all four plan ops, one deliberately malformed
// line, and one batch request mixing hits, a Π-skeleton reuse, a
// within-batch duplicate and an invalid sub-request — so the serve.*
// counters (requests, per-op counts, cache dispositions, error count) are
// fixed by the script alone and regress byte-identically.  The sharded
// cache keeps this contract: shard selection is a pure function of the
// canonical key, so dispositions and eviction counts never depend on
// thread scheduling.
//
// Timing phase (reported, never gated): the three cache dispositions as
// separate benchmarks — cold plan (fresh service per iteration), exact
// document hit (renamed nest against a primed cache) and Π-skeleton hit
// (document capacity 1 with alternating sizes, so every request re-runs the
// pipeline with the cached time function) — plus the batch hit path
// (per-sub-request replay cost at batch sizes 8 and 64) and a
// multi-connection throughput benchmark driving a real Server over a Unix
// socket with connections == worker threads.  These services use no obs
// wiring at all: counters scaled by google-benchmark's iteration count
// would destroy the baseline contract.
#include "bench_common.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "core/json_reader.hpp"
#include "perf/table.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using namespace hypart;

std::string sor_like(const std::string& tag, int n) {
  std::string N = std::to_string(n);
  return "loop nest" + tag + " { for i" + tag + " = 1 to " + N + " for j" + tag + " = 1 to " + N +
         " A" + tag + "[i" + tag + ", j" + tag + "] = (A" + tag + "[i" + tag + "-1, j" + tag +
         "] + A" + tag + "[i" + tag + ", j" + tag + "-1]) * 0.5; }";
}

std::string plan_request(const std::string& op, const std::string& program) {
  JsonWriter w;
  w.begin_object();
  w.field("op", op);
  w.field("program", program);
  w.key("params").begin_object();
  w.field("dim", std::int64_t{2});
  w.end_object();
  w.end_object();
  return w.str();
}

std::string batch_request(const std::vector<std::string>& subs) {
  JsonWriter w;
  w.begin_object();
  w.field("op", "batch");
  w.begin_array("requests");
  for (const std::string& sub : subs) w.raw_value(sub);
  w.end_array();
  w.end_object();
  return w.str();
}

void report() {
  bench::banner("hypart::serve — canonical plan cache dispositions");
  serve::ServiceOptions opts;
  opts.obs = bench::obs_context();
  serve::PlanService service(opts);

  // The scripted mix: stream 0 populates, stream 1 is a renamed copy; the
  // second size shares structure (Π) but not the exact key.
  static const char* kOps[] = {"partition", "map", "predict", "explain"};
  TextTable t({"stream", "size", "op", "cache", "loop"});
  for (const std::string tag : {"A", "B"}) {
    for (int size : {16, 32}) {
      for (const char* op : kOps) {
        JsonValue reply = parse_json(service.handle_line(plan_request(op, sor_like(tag, size))));
        t.row(tag, size, op, reply.string_or("cache", "?"),
              reply.get("result").string_or("loop", "?"));
      }
    }
  }
  // One malformed line: the error path is part of the gated contract too.
  (void)service.handle_line("{not json");
  std::printf("%s", t.to_string().c_str());

  // One batch line: two replays of cached documents, a Π reuse at a fresh
  // size, a within-batch duplicate of that fresh document, and one invalid
  // sub-request (ping is not a plan op) — all answered in request order.
  JsonValue batch = parse_json(service.handle_line(batch_request({
      plan_request("partition", sor_like("C", 16)),
      plan_request("map", sor_like("C", 32)),
      plan_request("predict", sor_like("C", 48)),
      plan_request("partition", sor_like("C", 48)),
      "{\"op\":\"ping\"}",
  })));
  TextTable bt({"#", "op", "cache", "loop"});
  const auto& replies = batch.get("replies").as_array();
  for (std::size_t i = 0; i < replies.size(); ++i) {
    const JsonValue& r = replies[i];
    if (!r.get("ok").as_bool()) {
      bt.row(i, "-", "error:" + r.get("error").string_or("kind", "?"), "-");
      continue;
    }
    bt.row(i, r.string_or("op", "?"), r.string_or("cache", "?"),
           r.get("result").string_or("loop", "?"));
  }
  std::printf("\nbatch of %zu:\n%s", replies.size(), bt.to_string().c_str());

  serve::PlanCacheStats s = service.cache_stats();
  std::printf("\ncache: %lld document hits, %lld pi hits, %lld full misses, "
              "%zu documents / %zu skeletons live\n",
              static_cast<long long>(s.doc_hits), static_cast<long long>(s.pi_hits),
              static_cast<long long>(s.doc_misses - s.pi_hits), s.documents, s.skeletons);
  std::printf("expected: 1 full miss (A/16 partition), pi hits at A/32 partition and the\n"
              "batch's size-48 predict, every other plan request replayed from the\n"
              "document tier (the batch duplicate replays its sibling's document).\n");
}

void BM_serve_cold(benchmark::State& state) {
  const std::string request = plan_request("partition", sor_like("A", 32));
  for (auto _ : state) {
    serve::PlanService service;  // fresh cache: full Π search + pipeline
    benchmark::DoNotOptimize(service.handle_line(request));
  }
}
BENCHMARK(BM_serve_cold)->Unit(benchmark::kMicrosecond);

void BM_serve_exact_hit(benchmark::State& state) {
  serve::PlanService service;
  (void)service.handle_line(plan_request("partition", sor_like("A", 32)));
  const std::string renamed = plan_request("partition", sor_like("B", 32));
  for (auto _ : state) benchmark::DoNotOptimize(service.handle_line(renamed));
}
BENCHMARK(BM_serve_exact_hit)->Unit(benchmark::kMicrosecond);

void BM_serve_pi_hit(benchmark::State& state) {
  serve::ServiceOptions opts;
  opts.doc_cache_capacity = 1;  // alternating sizes always miss the doc tier
  serve::PlanService service(opts);
  const std::string odd = plan_request("partition", sor_like("A", 33));
  const std::string even = plan_request("partition", sor_like("A", 34));
  (void)service.handle_line(odd);
  (void)service.handle_line(even);
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.handle_line(flip ? odd : even));
    flip = !flip;
  }
}
BENCHMARK(BM_serve_pi_hit)->Unit(benchmark::kMicrosecond);

// Per-sub-request cost of the batch hit path: one primed document replayed
// K times per line.  items_per_second is the per-sub-request rate.
void BM_serve_batch_hit(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  serve::PlanService service;
  (void)service.handle_line(plan_request("partition", sor_like("A", 32)));
  std::vector<std::string> subs;
  for (std::int64_t i = 0; i < k; ++i)
    subs.push_back(plan_request("partition", sor_like("B", 32)));
  const std::string line = batch_request(subs);
  for (auto _ : state) benchmark::DoNotOptimize(service.handle_line(line));
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_serve_batch_hit)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond);

int connect_unix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool roundtrip(int fd, const std::string& request, std::string& reply) {
  std::string line = request;
  line.push_back('\n');
  std::size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  reply.clear();
  char c = 0;
  for (;;) {
    ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return false;
    if (c == '\n') return true;
    reply.push_back(c);
  }
}

// Multi-connection hit workload against a real Server: N worker threads, N
// persistent client connections (workers own a connection for its
// lifetime), every request an exact document hit on a per-connection key so
// the load spreads across cache shards.  items_per_second is aggregate
// req/s; scaling 1 → 8 threads is the sharding payoff (on multi-core
// hosts — a single-core container serializes the workers).
void BM_serve_throughput(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kPerConn = 32;  // roundtrips per connection per iteration

  serve::PlanService service;
  serve::ServerOptions sopts;
  sopts.unix_path = "/tmp/hypart-bench-serve-" + std::to_string(::getpid()) + "-" +
                    std::to_string(threads) + ".sock";
  sopts.threads = threads;
  serve::Server server(service, sopts);
  server.start();

  // Prime one document per connection (sizes differ → distinct exact keys
  // → distinct shards); each client then replays a renamed copy of its own.
  std::vector<std::string> requests(threads);
  std::vector<int> fds(threads, -1);
  std::string reply;
  for (std::size_t t = 0; t < threads; ++t) {
    fds[t] = connect_unix(sopts.unix_path);
    if (fds[t] < 0) {
      state.SkipWithError("connect failed");
      server.request_stop();
      server.stop();
      return;
    }
    (void)roundtrip(fds[t], plan_request("partition", sor_like("P", 32 + static_cast<int>(t))),
                    reply);
    requests[t] = plan_request("partition", sor_like("C", 32 + static_cast<int>(t)));
  }

  for (auto _ : state) {
    std::vector<std::thread> clients;
    clients.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      clients.emplace_back([&, t] {
        std::string r;
        for (std::size_t i = 0; i < kPerConn; ++i)
          if (!roundtrip(fds[t], requests[t], r)) return;
      });
    }
    for (std::thread& c : clients) c.join();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(threads * kPerConn));

  for (int fd : fds) ::close(fd);
  server.request_stop();
  server.stop();
}
BENCHMARK(BM_serve_throughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace

HYPART_BENCH_MAIN(report)
