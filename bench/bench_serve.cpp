// hypart::serve — plan-service cache behaviour and request latency.
//
// Report phase (deterministic, baseline-gated): an in-process PlanService
// wired to bench::metrics() handles a scripted request mix — two renamed
// streams over two sizes and all four plan ops, plus one deliberately
// malformed line — so the serve.* counters (requests, per-op counts, cache
// dispositions, error count) are fixed by the script alone and regress
// byte-identically.
//
// Timing phase (reported, never gated): the three cache dispositions as
// separate benchmarks — cold plan (fresh service per iteration), exact
// document hit (renamed nest against a primed cache) and Π-skeleton hit
// (document capacity 1 with alternating sizes, so every request re-runs the
// pipeline with the cached time function).  These services use no obs
// wiring at all: counters scaled by google-benchmark's iteration count
// would destroy the baseline contract.
#include "bench_common.hpp"

#include "core/json_reader.hpp"
#include "perf/table.hpp"
#include "serve/service.hpp"

namespace {

using namespace hypart;

std::string sor_like(const std::string& tag, int n) {
  std::string N = std::to_string(n);
  return "loop nest" + tag + " { for i" + tag + " = 1 to " + N + " for j" + tag + " = 1 to " + N +
         " A" + tag + "[i" + tag + ", j" + tag + "] = (A" + tag + "[i" + tag + "-1, j" + tag +
         "] + A" + tag + "[i" + tag + ", j" + tag + "-1]) * 0.5; }";
}

std::string plan_request(const std::string& op, const std::string& program) {
  JsonWriter w;
  w.begin_object();
  w.field("op", op);
  w.field("program", program);
  w.key("params").begin_object();
  w.field("dim", std::int64_t{2});
  w.end_object();
  w.end_object();
  return w.str();
}

void report() {
  bench::banner("hypart::serve — canonical plan cache dispositions");
  serve::ServiceOptions opts;
  opts.obs = bench::obs_context();
  serve::PlanService service(opts);

  // The scripted mix: stream 0 populates, stream 1 is a renamed copy; the
  // second size shares structure (Π) but not the exact key.
  static const char* kOps[] = {"partition", "map", "predict", "explain"};
  TextTable t({"stream", "size", "op", "cache", "loop"});
  for (const std::string tag : {"A", "B"}) {
    for (int size : {16, 32}) {
      for (const char* op : kOps) {
        JsonValue reply = parse_json(service.handle_line(plan_request(op, sor_like(tag, size))));
        t.row(tag, size, op, reply.string_or("cache", "?"),
              reply.get("result").string_or("loop", "?"));
      }
    }
  }
  // One malformed line: the error path is part of the gated contract too.
  (void)service.handle_line("{not json");
  std::printf("%s", t.to_string().c_str());

  serve::PlanCacheStats s = service.cache_stats();
  std::printf("\ncache: %lld document hits, %lld pi hits, %lld full misses, "
              "%zu documents / %zu skeletons live\n",
              static_cast<long long>(s.doc_hits), static_cast<long long>(s.pi_hits),
              static_cast<long long>(s.doc_misses - s.pi_hits), s.documents, s.skeletons);
  std::printf("expected: 1 full miss (A/16 partition), 1 pi hit (A/32 partition),\n"
              "all 14 remaining plan requests replayed from the document tier.\n");
}

void BM_serve_cold(benchmark::State& state) {
  const std::string request = plan_request("partition", sor_like("A", 32));
  for (auto _ : state) {
    serve::PlanService service;  // fresh cache: full Π search + pipeline
    benchmark::DoNotOptimize(service.handle_line(request));
  }
}
BENCHMARK(BM_serve_cold)->Unit(benchmark::kMicrosecond);

void BM_serve_exact_hit(benchmark::State& state) {
  serve::PlanService service;
  (void)service.handle_line(plan_request("partition", sor_like("A", 32)));
  const std::string renamed = plan_request("partition", sor_like("B", 32));
  for (auto _ : state) benchmark::DoNotOptimize(service.handle_line(renamed));
}
BENCHMARK(BM_serve_exact_hit)->Unit(benchmark::kMicrosecond);

void BM_serve_pi_hit(benchmark::State& state) {
  serve::ServiceOptions opts;
  opts.doc_cache_capacity = 1;  // alternating sizes always miss the doc tier
  serve::PlanService service(opts);
  const std::string odd = plan_request("partition", sor_like("A", 33));
  const std::string even = plan_request("partition", sor_like("A", 34));
  (void)service.handle_line(odd);
  (void)service.handle_line(even);
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.handle_line(flip ? odd : even));
    flip = !flip;
  }
}
BENCHMARK(BM_serve_pi_hit)->Unit(benchmark::kMicrosecond);

}  // namespace

HYPART_BENCH_MAIN(report)
