// Ablation A3 — independent partitioning (GCD / minimum-distance family,
// paper refs [5], [16], [18], [20]) vs Algorithm 1.
//
// Reproduces the paper's Section I claim: "For many important nested loop
// algorithms, such as matrix multiplication, discrete Fourier transform,
// convolution, transitive closure, ... these index sets cannot be
// partitioned into independent blocks. Therefore, these algorithms will
// execute sequentially by their methods."
#include "bench_common.hpp"

#include <memory>

#include "baselines/independent.hpp"
#include "mapping/baseline_map.hpp"
#include "mapping/hypercube_map.hpp"
#include "partition/blocks.hpp"
#include "perf/table.hpp"
#include "sim/exec_sim.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

void report() {
  bench::banner("Ablation A3: independent partitioning vs Algorithm 1 (Sheu-Tai)");

  TextTable t({"workload", "dep lattice divisors", "independent blocks", "Sheu-Tai blocks",
               "interblock/total arcs"});

  auto add = [&](const LoopNest& nest) {
    auto q = std::make_unique<ComputationStructure>(ComputationStructure::from_loop(nest));
    IndependentPartition ip = independent_partition(*q);
    std::string divisors;
    for (std::int64_t d : ip.elementary_divisors) {
      if (!divisors.empty()) divisors += ",";
      divisors += std::to_string(d);
    }
    if (ip.lattice_rank < q->dimension()) divisors += " (rank-deficient)";

    auto tf = search_time_function(*q);
    std::string st_blocks = "-";
    std::string arcs = "-";
    if (tf) {
      ProjectedStructure ps(*q, *tf);
      Grouping g = Grouping::compute(ps);
      Partition p = Partition::build(*q, g);
      PartitionStats stats = compute_partition_stats(*q, p);
      st_blocks = std::to_string(p.block_count());
      arcs = std::to_string(stats.interblock_arcs) + "/" + std::to_string(stats.total_arcs);
    }
    std::string indep = std::to_string(ip.block_count);
    if (ip.is_sequential()) indep += " (SEQUENTIAL)";
    t.row(nest.name(), divisors, indep, st_blocks, arcs);
  };

  add(workloads::matrix_multiplication(7));
  add(workloads::matrix_vector(16));
  add(workloads::convolution1d(16, 8));
  add(workloads::transitive_closure(8));
  add(workloads::sor2d(12, 12));
  add(workloads::wavefront3d(6));
  add(workloads::strided_recurrence(15, 3));
  add(workloads::strided_recurrence(15, 5));
  add(workloads::dft_horner(16));
  std::printf("%s", t.to_string().c_str());

  // Head-to-head simulated execution time on an 8-processor hypercube:
  // the GCD family's blocks need no communication at all, but when the
  // lattice is det-1 everything lands in ONE block and the machine idles.
  std::printf("\nSimulated T_exec on 8 processors (t_calc=1, t_start=50, t_comm=5):\n");
  TextTable head({"workload", "independent blocks T", "Sheu-Tai T", "winner"});
  MachineParams machine{1.0, 50.0, 5.0};
  auto duel = [&](const LoopNest& nest) {
    auto q = std::make_unique<ComputationStructure>(ComputationStructure::from_loop(nest));
    auto tf = search_time_function(*q);
    if (!tf) return;
    SimOptions opts;
    opts.flops_per_iteration = nest.body_flops();

    IndependentPartition ip = independent_partition(*q);
    Partition indep = Partition::from_labels(*q, ip.labels);
    TaskInteractionGraph indep_tig(indep.block_count());
    for (std::size_t b = 0; b < indep.block_count(); ++b)
      indep_tig.set_compute_weight(b,
                                   static_cast<std::int64_t>(indep.blocks()[b].iterations.size()));
    Mapping indep_map = map_round_robin(indep_tig, 8);
    SimResult ri = simulate_execution(*q, *tf, indep, indep_map, Hypercube(3), machine, opts);

    ProjectedStructure ps(*q, *tf);
    Grouping g = Grouping::compute(ps);
    Partition st = Partition::build(*q, g);
    TaskInteractionGraph tig = TaskInteractionGraph::from_partition(*q, st, g);
    Mapping st_map = map_to_hypercube(tig, 3).mapping;
    SimResult rs = simulate_execution(*q, *tf, st, st_map, Hypercube(3), machine, opts);

    head.row(nest.name(), ri.time, rs.time, rs.time < ri.time ? "Sheu-Tai" : "independent");
  };
  duel(workloads::matrix_vector(128));
  duel(workloads::convolution1d(128, 32));
  duel(workloads::sor2d(64, 64));
  duel(workloads::strided_recurrence(23, 3));
  std::printf("%s", head.to_string().c_str());
  std::printf(
      "\nGrain size matters (paper Section IV): at these medium-grain sizes the\n"
      "Sheu-Tai partitioning beats the serialized det-1 kernels; for genuinely\n"
      "independent recurrences (stride > 1) the GCD family wins outright since\n"
      "its blocks need zero communication.\n");
  std::printf(
      "\nReading: every det-1 dependence lattice collapses to ONE independent\n"
      "block (sequential execution), while Algorithm 1 still extracts blocks\n"
      "with bounded communication; only artificially strided recurrences give\n"
      "the GCD family any parallelism (stride^2 blocks).\n");
}

void bm_independent_partition(benchmark::State& state) {
  ComputationStructure q = ComputationStructure::from_loop(
      workloads::strided_recurrence(state.range(0), 3));
  for (auto _ : state) {
    IndependentPartition ip = independent_partition(q);
    benchmark::DoNotOptimize(ip);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_independent_partition)->Arg(15)->Arg(30)->Arg(60)->Complexity();

void bm_smith_normal_form(benchmark::State& state) {
  IntMat d = IntMat::from_cols({{0, 1, 0}, {1, 0, 0}, {0, 0, 1}});
  for (auto _ : state) {
    SmithResult s = smith_normal_form(d);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(bm_smith_normal_form);

void bm_hermite_normal_form(benchmark::State& state) {
  IntMat d = IntMat::from_cols({{2, 4, 1}, {6, 8, 3}, {10, 14, 5}});
  for (auto _ : state) {
    HermiteResult h = hermite_normal_form(d);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(bm_hermite_normal_form);

}  // namespace

HYPART_BENCH_MAIN(report)
