// Fig. 3 — projected structure and partitioning of loop (L1) with Π = (1,1).
//
// Reproduces: the 7 projected points / projection lines (Fig. 3(a)), the
// grouping into 4 groups, and the headline count "33 dependencies, only 12
// interblock" (Fig. 3(b)).  Benchmarks time projection and grouping.
#include "bench_common.hpp"

#include "partition/blocks.hpp"
#include "partition/checkers.hpp"
#include "perf/table.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

void report() {
  bench::banner("Fig. 3: projected structure & partitioning of loop (L1), Pi=(1,1)");

  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  TimeFunction tf{{1, 1}};
  ProjectedStructure ps(q, tf);

  std::printf("projected points |V^p| = %zu (paper: 7)\n", ps.point_count());
  TextTable pts({"projected point", "line population"});
  for (std::size_t i = 0; i < ps.point_count(); ++i)
    pts.row(to_string(ps.point_rational(i)), ps.line_population(i));
  std::printf("%s", pts.to_string().c_str());

  std::printf("projected dependence vectors:\n");
  for (std::size_t k = 0; k < q.dependences().size(); ++k)
    std::printf("  d%zu = %s -> d%zu^p = %s (r_%zu = %lld)\n", k + 1,
                to_string(q.dependences()[k]).c_str(), k + 1,
                to_string(ps.projected_dep_rational(k)).c_str(), k + 1,
                static_cast<long long>(ps.replication_factor(k)));

  Grouping g = Grouping::compute(ps);
  std::printf("\ngroup size r = %lld, beta = %zu, groups = %zu (paper: 4)\n",
              static_cast<long long>(g.group_size_r()), g.beta(), g.group_count());
  TextTable groups({"group", "projected points", "block iterations"});
  Partition part = Partition::build(q, g);
  for (std::size_t i = 0; i < g.group_count(); ++i) {
    std::string members;
    for (std::size_t pid : g.groups()[i].members()) {
      if (!members.empty()) members += " ";
      members += to_string(ps.point_rational(pid));
    }
    groups.row("G" + std::to_string(i), members, part.blocks()[i].iterations.size());
  }
  std::printf("%s", groups.to_string().c_str());

  PartitionStats stats = compute_partition_stats(q, part);
  std::printf("dependence pairs total = %zu (paper: 33), interblock = %zu (paper: 12)\n",
              stats.total_arcs, stats.interblock_arcs);
  std::printf("%s\n", check_theorem2(g).to_string().c_str());
  std::printf("Theorem 1 (schedule preserved): %s\n",
              check_theorem1(q, tf, part) ? "HOLDS" : "VIOLATED");
}

void bm_projection(benchmark::State& state) {
  ComputationStructure q =
      ComputationStructure::from_loop(workloads::example_l1(state.range(0)));
  TimeFunction tf{{1, 1}};
  for (auto _ : state) {
    ProjectedStructure ps(q, tf);
    benchmark::DoNotOptimize(ps);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_projection)->Arg(7)->Arg(15)->Arg(31)->Arg(63)->Complexity();

void bm_grouping(benchmark::State& state) {
  ComputationStructure q =
      ComputationStructure::from_loop(workloads::example_l1(state.range(0)));
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  for (auto _ : state) {
    Grouping g = Grouping::compute(ps);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(bm_grouping)->Arg(7)->Arg(15)->Arg(31)->Arg(63);

void bm_partition_stats(benchmark::State& state) {
  ComputationStructure q =
      ComputationStructure::from_loop(workloads::example_l1(state.range(0)));
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  Grouping g = Grouping::compute(ps);
  Partition p = Partition::build(q, g);
  for (auto _ : state) {
    PartitionStats s = compute_partition_stats(q, p);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(bm_partition_stats)->Arg(15)->Arg(63);

}  // namespace

HYPART_BENCH_MAIN(report)
