// Ablation A4 — speedup/efficiency curves across workloads and machine
// sizes, and comm-to-compute ratio vs grain size (the paper's closing
// observation: "the ratio of communication time to computation time
// declines rapidly as the grain size grows. Thus, our method is suitable
// for medium- to coarse-grain computation").
#include "bench_common.hpp"

#include "core/pipeline.hpp"
#include "perf/perf_model.hpp"
#include "perf/table.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

void speedup_curves() {
  MachineParams machine{1.0, 50.0, 5.0};
  std::printf("\nSimulated speedup (PaperMaxChannel accounting, t_start=50, t_comm=5):\n");
  TextTable t({"workload", "N=1", "N=2", "N=4", "N=8", "N=16"});
  struct W {
    const char* label;
    LoopNest nest;
    IntVec pi;
  };
  std::vector<W> ws;
  ws.push_back({"matvec M=96", workloads::matrix_vector(96), {1, 1}});
  ws.push_back({"sor2d 64x64", workloads::sor2d(64, 64), {1, 1}});
  ws.push_back({"conv1d 96x32", workloads::convolution1d(96, 32), {1, 1}});
  ws.push_back({"matmul 12^3", workloads::matrix_multiplication(11), {1, 1, 1}});
  for (W& w : ws) {
    std::vector<std::string> row{w.label};
    PipelineConfig cfg;
    cfg.time_function = w.pi;
    cfg.machine = machine;
    cfg.obs = bench::obs_context();
    double seq = 0.0;
    for (unsigned dim = 0; dim <= 4; ++dim) {
      cfg.cube_dim = dim;
      PipelineResult r = run_pipeline(w.nest, cfg);
      if (dim == 0) seq = r.sim.time;
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", seq / r.sim.time);
      row.push_back(buf);
    }
    t.add_row(row);
  }
  std::printf("%s", t.to_string().c_str());
}

void grain_size_ratio() {
  MachineParams machine{1.0, 50.0, 5.0};
  std::printf("\nComm/compute ratio vs grain size (matvec, N = 16, closed form):\n");
  TextTable t({"M", "T compute", "T comm", "comm/compute"});
  for (std::int64_t m : {32, 64, 128, 256, 512, 1024, 2048}) {
    Cost c = perf::matvec_exec_time(m, 16);
    double compute = Cost{c.calc, 0, 0}.value(machine);
    double comm = Cost{0, c.start, c.comm}.value(machine);
    t.row(m, compute, comm, comm / compute);
  }
  std::printf("%s", t.to_string().c_str());
}

void efficiency_table() {
  MachineParams machine{1.0, 50.0, 5.0};
  std::printf("\nEfficiency = speedup/N (matvec closed form, M = 1024):\n");
  TextTable t({"N", "speedup", "efficiency"});
  for (std::int64_t n : {1, 4, 16, 64, 256, 1024}) {
    double s = perf::matvec_speedup(1024, n, machine);
    t.row(n, s, s / static_cast<double>(n));
  }
  std::printf("%s", t.to_string().c_str());
}

void report() {
  bench::banner("Ablation A4: scaling, efficiency, and grain-size behaviour");
  speedup_curves();
  grain_size_ratio();
  efficiency_table();
}

void bm_pipeline_sor(benchmark::State& state) {
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1};
  cfg.cube_dim = 3;
  LoopNest nest = workloads::sor2d(state.range(0), state.range(0));
  for (auto _ : state) {
    PipelineResult r = run_pipeline(nest, cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_pipeline_sor)->Arg(16)->Arg(32)->Arg(64)->Complexity()->Unit(benchmark::kMillisecond);

void bm_pipeline_wavefront(benchmark::State& state) {
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1, 1};
  cfg.cube_dim = 3;
  LoopNest nest = workloads::wavefront3d(state.range(0));
  for (auto _ : state) {
    PipelineResult r = run_pipeline(nest, cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(bm_pipeline_wavefront)->Arg(6)->Arg(10)->Arg(14)->Unit(benchmark::kMillisecond);

// Span-instrumentation overhead.  bm_pipeline_sor_obs_off is byte-for-byte
// the same work as bm_pipeline_sor/32: with a null sink every Span reduces
// to a pointer test, so any delta between those two is measurement noise —
// that pair pins "profiling costs nothing when disabled".  The _nullsink
// variant installs an obs::NullSink that discards every event; its delta
// over _obs_off is the real cost of *enabling* instrumentation (span
// clock/rusage/alloc reads plus the simulator's per-event trace
// reconstruction, which a live sink switches on) and is expected to be
// visible, not free.
void bm_pipeline_sor_obs_off(benchmark::State& state) {
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1};
  cfg.cube_dim = 3;
  LoopNest nest = workloads::sor2d(state.range(0), state.range(0));
  for (auto _ : state) {
    PipelineResult r = run_pipeline(nest, cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(bm_pipeline_sor_obs_off)->Arg(32)->Unit(benchmark::kMillisecond);

void bm_pipeline_sor_obs_nullsink(benchmark::State& state) {
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1};
  cfg.cube_dim = 3;
  obs::NullSink sink;
  cfg.obs.trace = &sink;
  LoopNest nest = workloads::sor2d(state.range(0), state.range(0));
  for (auto _ : state) {
    PipelineResult r = run_pipeline(nest, cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(bm_pipeline_sor_obs_nullsink)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

HYPART_BENCH_MAIN(report)
