// Fig. 7 — the group-level communication graph of the matrix-multiplication
// partitioning.
//
// Reproduces: an interior group (the paper's G_10) sends data to exactly
// 2m - beta = 4 groups; prints the full group digraph edge list and degree
// histogram, and validates Lemmas 2-3.
#include "bench_common.hpp"

#include <map>

#include "partition/blocks.hpp"
#include "partition/checkers.hpp"
#include "perf/table.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

GroupingOptions paper_options(const ProjectedStructure& ps) {
  GroupingOptions opts;
  std::vector<std::size_t> aux;
  const std::vector<IntVec>& pdeps = ps.projected_deps_scaled();
  for (std::size_t k = 0; k < pdeps.size(); ++k) {
    if (pdeps[k] == IntVec{-1, 2, -1}) opts.grouping_vector = k;
    if (pdeps[k] == IntVec{-1, -1, 2}) aux.push_back(k);
  }
  opts.auxiliary_vectors = aux;
  opts.seed_policy = SeedPolicy::ExplicitBases;
  opts.explicit_bases = {{-3, -3, 6}};
  return opts;
}

void report() {
  bench::banner("Fig. 7: group communication graph of matrix multiplication");

  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication());
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  Grouping g = Grouping::compute(ps, paper_options(ps));
  Digraph dg = g.group_digraph();

  std::printf("groups = %zu, directed comm edges = %zu\n", dg.vertex_count(), dg.edge_count());

  // Out-degree histogram: interior groups attain 2m - beta = 4.
  TextTable hist({"out-degree (groups sent to)", "count of groups"});
  std::map<std::size_t, std::size_t> degrees;
  for (std::size_t v = 0; v < dg.vertex_count(); ++v) ++degrees[dg.out_degree(v)];
  for (const auto& [deg, count] : degrees) hist.row(deg, count);
  std::printf("%s", hist.to_string().c_str());

  Theorem2Report t2 = check_theorem2(g);
  std::printf("%s (paper: interior groups send to 2*3-2 = 4 groups)\n",
              t2.to_string().c_str());
  LemmaReport lr = check_lemmas(g);
  std::printf("Lemma 2 (<=1 successor along grouping/aux dirs): %s (worst fanout %zu)\n",
              lr.lemma2_holds ? "HOLDS" : "VIOLATED", lr.worst_lemma2_fanout);
  std::printf("Lemma 3 (<=2 successors along other dirs): %s (worst fanout %zu)\n",
              lr.lemma3_holds ? "HOLDS" : "VIOLATED", lr.worst_lemma3_fanout);

  std::printf("\nedge list (Gi -> Gj, weight = projected dependence relations):\n");
  for (std::size_t v = 0; v < dg.vertex_count(); ++v)
    for (const Digraph::Edge& e : dg.out_edges(v))
      std::printf("  G%zu -> G%zu (w=%lld)\n", v + 1, e.to + 1,
                  static_cast<long long>(e.weight));
}

void bm_group_digraph(benchmark::State& state) {
  ComputationStructure q =
      ComputationStructure::from_loop(workloads::matrix_multiplication(state.range(0)));
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  Grouping g = Grouping::compute(ps);
  for (auto _ : state) {
    Digraph dg = g.group_digraph();
    benchmark::DoNotOptimize(dg);
  }
}
BENCHMARK(bm_group_digraph)->Arg(3)->Arg(7)->Arg(11);

void bm_theorem2_check(benchmark::State& state) {
  ComputationStructure q =
      ComputationStructure::from_loop(workloads::matrix_multiplication(state.range(0)));
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  Grouping g = Grouping::compute(ps);
  for (auto _ : state) {
    Theorem2Report r = check_theorem2(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(bm_theorem2_check)->Arg(3)->Arg(7);

void bm_lemma_check(benchmark::State& state) {
  ComputationStructure q =
      ComputationStructure::from_loop(workloads::matrix_multiplication(state.range(0)));
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  Grouping g = Grouping::compute(ps);
  for (auto _ : state) {
    LemmaReport r = check_lemmas(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(bm_lemma_check)->Arg(3)->Arg(7);

}  // namespace

HYPART_BENCH_MAIN(report)
