// Robustness R1 — the supervised multi-process backend: fork+socket workers
// must reproduce sequential semantics exactly, fault-free and under injected
// worker kills, and its recovery (charged block reassignment + epoch
// restart) is costed against the fault-free run.
//
// Baseline discipline: only schedule-deterministic quantities (message and
// hop counts, worker counts, reassignment accounting, equality verdicts) go
// into bench::metrics().  Timing-dependent counters (heartbeat misses, send
// retries) are printed but never recorded — they would break the
// byte-identical baseline contract.
#include "bench_common.hpp"

#include <memory>

#include "exec/interpreter.hpp"
#include "exec/parallel_runtime.hpp"
#include "exec/proc_runtime.hpp"
#include "fault/fault_plan.hpp"
#include "mapping/hypercube_map.hpp"
#include "perf/table.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

struct Pieces {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
  TaskInteractionGraph tig;
  TimeFunction tf;
  DependenceInfo deps;
  LoopNest nest;

  explicit Pieces(LoopNest n) : nest(std::move(n)) {
    deps = analyze_dependences(nest);
    IndexSet is(nest);
    q = std::make_unique<ComputationStructure>(is.points(), deps.distance_vectors());
    tf = *search_time_function(*q);
    ps = std::make_unique<ProjectedStructure>(*q, tf);
    grouping = Grouping::compute(*ps);
    partition = Partition::build(*q, grouping);
    tig = TaskInteractionGraph::from_partition(*q, partition, grouping);
  }
};

void report() {
  bench::banner("Robustness R1: supervised process execution == sequential");
  {
    TextTable t({"workload", "iterations", "workers", "procs equal", "threads equal",
                 "value msgs", "route hops", "halo loads"});
    auto add = [&](LoopNest nest, unsigned dim) {
      Pieces p(std::move(nest));
      Mapping map = map_to_hypercube(p.tig, dim).mapping;
      ArrayStore seq = run_sequential(p.nest);
      ProcRunResult procs = run_procs(p.nest, *p.q, p.tf, p.partition, map, p.deps);
      EquivalenceReport eq = compare_stores(seq, procs.written);
      ParallelRunResult threads = run_parallel(p.nest, *p.q, p.tf, p.partition, map, p.deps);
      EquivalenceReport eq_thr = compare_stores(seq, threads.written);
      t.row(p.nest.name(), p.q->vertices().size(), procs.stats.workers,
            eq.equal ? "YES" : "NO", eq_thr.equal ? "YES" : "NO",
            procs.stats.messages_sent, procs.stats.route_hops, procs.stats.halo_loads);
      const std::string key = "proc_exec." + p.nest.name();
      bench::metrics().set_gauge(key + ".equal", eq.equal ? 1.0 : 0.0);
      bench::metrics().add(key + ".messages", procs.stats.messages_sent);
      bench::metrics().add(key + ".route_hops", procs.stats.route_hops);
      bench::metrics().add(key + ".workers",
                           static_cast<std::int64_t>(procs.stats.workers));
    };
    add(workloads::example_l1(12), 2);
    add(workloads::matrix_vector(16), 2);
    add(workloads::sor2d(12, 12), 2);
    add(workloads::convolution1d(32, 8), 2);
    std::printf("%s", t.to_string().c_str());
    std::printf("\nEvery row must read YES twice: real OS processes with framed socket\n"
                "messaging reproduce sequential semantics, same as the threaded backend.\n");
  }

  bench::banner("Robustness R2: recovery cost of one injected worker kill");
  {
    TextTable t({"workload", "fault", "equal", "recoveries", "blocks moved", "words moved",
                 "msgs (faulted)", "msgs (clean)"});
    auto add = [&](LoopNest nest, unsigned dim, const std::string& spec) {
      Pieces p(std::move(nest));
      Mapping map = map_to_hypercube(p.tig, dim).mapping;
      ArrayStore seq = run_sequential(p.nest);
      ProcRunResult clean = run_procs(p.nest, *p.q, p.tf, p.partition, map, p.deps);
      ProcRunOptions opts;
      opts.heartbeat_interval_ms = 10;
      opts.heartbeat_timeout_ms = 1000;
      opts.proc_faults = fault::FaultPlan::parse(spec).proc_faults;
      ProcRunResult faulted = run_procs(p.nest, *p.q, p.tf, p.partition, map, p.deps, opts);
      EquivalenceReport eq = compare_stores(seq, faulted.written);
      t.row(p.nest.name(), spec, eq.equal ? "YES" : "NO", faulted.stats.recoveries,
            faulted.stats.migrated_blocks, faulted.stats.migration_words,
            faulted.stats.messages_sent, clean.stats.messages_sent);
      const std::string key = "proc_recover." + p.nest.name();
      bench::metrics().set_gauge(key + ".equal", eq.equal ? 1.0 : 0.0);
      bench::metrics().add(key + ".recoveries", faulted.stats.recoveries);
      bench::metrics().add(key + ".migrated_blocks",
                           static_cast<std::int64_t>(faulted.stats.migrated_blocks));
      bench::metrics().add(key + ".migration_words", faulted.stats.migration_words);
    };
    add(workloads::matrix_vector(16), 2, "proc:kill:1@2");
    add(workloads::sor2d(10, 10), 2, "proc:kill:0");
    add(workloads::example_l1(10), 1, "proc:kill:1@3");
    std::printf("%s", t.to_string().c_str());
    std::printf("\nThe kill really happens (SIGKILL mid-schedule); the supervisor detects\n"
                "it, charges the block migration shown, restarts the epoch on the\n"
                "survivors, and the output still matches sequential bit for bit.\n");
  }
}

void bm_threads_exec(benchmark::State& state) {
  Pieces p(workloads::sor2d(state.range(0), state.range(0)));
  Mapping map = map_to_hypercube(p.tig, 2).mapping;
  for (auto _ : state) {
    ParallelRunResult r = run_parallel(p.nest, *p.q, p.tf, p.partition, map, p.deps);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_threads_exec)->Arg(8)->Arg(16)->Arg(24)->Complexity()
    ->Unit(benchmark::kMillisecond);

void bm_procs_exec(benchmark::State& state) {
  Pieces p(workloads::sor2d(state.range(0), state.range(0)));
  Mapping map = map_to_hypercube(p.tig, 2).mapping;
  for (auto _ : state) {
    ProcRunResult r = run_procs(p.nest, *p.q, p.tf, p.partition, map, p.deps);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_procs_exec)->Arg(8)->Arg(16)->Arg(24)->Complexity()
    ->Unit(benchmark::kMillisecond);

void bm_procs_recovery(benchmark::State& state) {
  Pieces p(workloads::sor2d(state.range(0), state.range(0)));
  Mapping map = map_to_hypercube(p.tig, 2).mapping;
  ProcRunOptions opts;
  opts.heartbeat_interval_ms = 10;
  opts.heartbeat_timeout_ms = 1000;
  opts.proc_faults = fault::FaultPlan::parse("proc:kill:1@2").proc_faults;
  for (auto _ : state) {
    ProcRunResult r = run_procs(p.nest, *p.q, p.tf, p.partition, map, p.deps, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_procs_recovery)->Arg(8)->Arg(16)->Complexity()
    ->Unit(benchmark::kMillisecond);

}  // namespace

HYPART_BENCH_MAIN(report)
