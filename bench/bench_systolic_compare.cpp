// Ablation A9 — systolic space transformation vs Algorithm 1 blocks.
//
// Quantifies the paper's Section II argument: the classic systolic
// allocation (one PE per projection line) needs a machine that grows with
// the problem and leaves PEs idle outside their line's activity window,
// while the partitioned blocks fit any fixed hypercube.
#include "bench_common.hpp"

#include <memory>

#include "mapping/hypercube_map.hpp"
#include "perf/table.hpp"
#include "systolic/systolic.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

void sweep(const char* label, const std::function<LoopNest(std::int64_t)>& make,
           const IntVec& pi, std::initializer_list<std::int64_t> sizes) {
  std::printf("\n%s:\n", label);
  TextTable t({"problem size", "iterations", "systolic PEs", "PE util", "Sheu-Tai blocks",
               "fits 8-proc cube"});
  for (std::int64_t n : sizes) {
    LoopNest nest = make(n);
    auto q = std::make_unique<ComputationStructure>(ComputationStructure::from_loop(nest));
    ProjectedStructure ps(*q, TimeFunction{pi});
    SystolicArray array = derive_systolic_array(*q, ps);
    Grouping g = Grouping::compute(ps);
    Partition p = Partition::build(*q, g);
    t.row(n, q->vertices().size(), array.pe_count, array.mean_pe_utilization, p.block_count(),
          "yes (blocks cluster)");
  }
  std::printf("%s", t.to_string().c_str());
}

void report() {
  bench::banner("Ablation A9: systolic space transformation vs partitioned blocks");

  sweep("matrix-vector multiplication (M x M)", [](std::int64_t m) {
    return workloads::matrix_vector(m);
  }, {1, 1}, {8, 16, 32, 64, 128});

  sweep("matrix multiplication (n^3)", [](std::int64_t n) {
    return workloads::matrix_multiplication(n - 1);
  }, {1, 1, 1}, {4, 6, 8, 12, 16});

  // Detail view of the 4x4x4 matmul array (the paper's Fig. 5 geometry).
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication());
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  SystolicArray array = derive_systolic_array(q, ps);
  std::printf("\n4x4x4 matmul systolic array: %s\n", array.summary().c_str());
  std::printf(
      "\nReading: the systolic allocation needs O(problem^{n-1}) PEs (2M-1 for\n"
      "matvec, ~3n^2/... for matmul's hexagon) with PE utilization that decays\n"
      "as the wavefront only touches each line part-time; Algorithm 1 folds\n"
      "whole lines into blocks and the cluster phase fits them onto any fixed\n"
      "machine — the reason the paper replaces the space transformation.\n");
}

void bm_derive_systolic(benchmark::State& state) {
  ComputationStructure q =
      ComputationStructure::from_loop(workloads::matrix_vector(state.range(0)));
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  for (auto _ : state) {
    SystolicArray a = derive_systolic_array(q, ps);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(bm_derive_systolic)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

HYPART_BENCH_MAIN(report)
