// Ablation A6 — network contention: how much the paper's contention-free
// accounting underestimates when messages share physical links.
//
// Compares the three accounting conventions (PaperMaxChannel,
// PerStepBarrier, LinkContention with e-cube routing) across mappings; the
// Gray mapping keeps every message on one link, so its contention penalty
// is nil, while scattered placements congest shared links.
#include "bench_common.hpp"

#include <memory>

#include "mapping/baseline_map.hpp"
#include "mapping/hypercube_map.hpp"
#include "perf/table.hpp"
#include "sim/exec_sim.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

struct Pieces {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
  TaskInteractionGraph tig;
  TimeFunction tf;
};

Pieces build(const LoopNest& nest, const IntVec& pi) {
  Pieces p;
  p.q = std::make_unique<ComputationStructure>(ComputationStructure::from_loop(nest));
  p.tf = TimeFunction{pi};
  p.ps = std::make_unique<ProjectedStructure>(*p.q, p.tf);
  p.grouping = Grouping::compute(*p.ps);
  p.partition = Partition::build(*p.q, p.grouping);
  p.tig = TaskInteractionGraph::from_partition(*p.q, p.partition, p.grouping);
  return p;
}

void contention_table(const char* title, Pieces& p, unsigned dim, std::int64_t flops) {
  Hypercube cube(dim);
  MachineParams machine{1.0, 50.0, 5.0};
  std::printf("\n%s (procs = %zu)\n", title, cube.size());
  TextTable t({"mapping", "paper-max-channel T", "barrier T", "contention T",
               "max link words", "contention/barrier"});
  auto add = [&](const Mapping& m) {
    SimOptions paper, barrier, cont;
    paper.accounting = CommAccounting::PaperMaxChannel;
    barrier.accounting = CommAccounting::PerStepBarrier;
    cont.accounting = CommAccounting::LinkContention;
    paper.flops_per_iteration = barrier.flops_per_iteration = cont.flops_per_iteration = flops;
    cont.obs = bench::obs_context();
    SimResult rp = simulate_execution(*p.q, p.tf, p.partition, m, cube, machine, paper);
    SimResult rb = simulate_execution(*p.q, p.tf, p.partition, m, cube, machine, barrier);
    SimResult rc = simulate_execution(*p.q, p.tf, p.partition, m, cube, machine, cont);
    t.row(m.method, rp.time, rb.time, rc.time, rc.max_link_words, rc.time / rb.time);
  };
  add(map_to_hypercube(p.tig, dim).mapping);
  add(map_contiguous(p.tig, cube.size()));
  add(map_round_robin(p.tig, cube.size()));
  add(map_random(p.tig, cube.size(), 7));
  std::printf("%s", t.to_string().c_str());
}

void report() {
  bench::banner("Ablation A6: link contention vs contention-free accounting");
  {
    Pieces p = build(workloads::matrix_vector(64), {1, 1});
    contention_table("matvec M=64, 3-cube", p, 3, 2);
  }
  {
    Pieces p = build(workloads::sor2d(32, 32), {1, 1});
    contention_table("sor2d 32x32, 4-cube", p, 4, 3);
  }
  std::printf(
      "\nReading: the Gray mapping routes every message over exactly one link,\n"
      "so contention time <= the sender-serialized barrier model; scattered\n"
      "mappings overlap routes on shared links and the busiest-link word count\n"
      "grows by the average route length.\n");
}

void bm_contention_sim(benchmark::State& state) {
  Pieces p = build(workloads::matrix_vector(state.range(0)), {1, 1});
  Mapping m = map_to_hypercube(p.tig, 3).mapping;
  Hypercube cube(3);
  SimOptions opts;
  opts.accounting = CommAccounting::LinkContention;
  for (auto _ : state) {
    SimResult r = simulate_execution(*p.q, p.tf, p.partition, m, cube, MachineParams{}, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_contention_sim)->Arg(32)->Arg(64)->Arg(128)->Complexity()
    ->Unit(benchmark::kMillisecond);

void bm_ecube_routing(benchmark::State& state) {
  Hypercube cube(10);
  for (auto _ : state) {
    std::size_t total = 0;
    for (ProcId a = 0; a < 64; ++a)
      for (ProcId b = 0; b < 64; ++b) total += cube.ecube_route(a, b).size();
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(bm_ecube_routing);

}  // namespace

HYPART_BENCH_MAIN(report)
