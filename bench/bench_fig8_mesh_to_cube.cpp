// Fig. 8 / Example 3 — mapping a 4x4 mesh-like TIG onto a 3-dimensional
// hypercube with Gray-coded clusters.
//
// Reproduces: 8 clusters of two blocks, every processor used once, cluster
// numbering by concatenated per-direction Gray codes, and the property that
// clusters adjacent along a bisection direction land on cube neighbors.
#include "bench_common.hpp"

#include "mapping/baseline_map.hpp"
#include "mapping/gray.hpp"
#include "mapping/hypercube_map.hpp"
#include "perf/table.hpp"

namespace {

using namespace hypart;

void report() {
  bench::banner("Fig. 8: 4x4 mesh TIG onto a 3-cube (Gray-coded clusters)");

  TaskInteractionGraph tig = TaskInteractionGraph::mesh(4, 4);
  HypercubeMappingResult res = map_to_hypercube(tig, 3);

  std::printf("TIG: %zu blocks, %zu mesh edges; cube: 8 processors\n",
              tig.vertex_count(), tig.edges().size());
  std::printf("bits per direction: x=%u, y=%u (paper: 1-bit x Gray, 2-bit y Gray)\n",
              res.bits_per_direction[0], res.bits_per_direction[1]);

  TextTable t({"cluster", "blocks (B_i)", "ranks (x,y)", "processor (binary)"});
  for (std::size_t c = 0; c < res.clusters.size(); ++c) {
    const Cluster& cl = res.clusters[c];
    std::string blocks;
    for (std::size_t v : cl.vertices) {
      if (!blocks.empty()) blocks += ",";
      blocks += "B" + std::to_string(v + 1);
    }
    std::string ranks = "(" + std::to_string(cl.ranks[0]) + "," + std::to_string(cl.ranks[1]) + ")";
    std::string proc;
    for (int b = 2; b >= 0; --b) proc += ((cl.processor >> b) & 1) ? '1' : '0';
    t.row("C" + std::to_string(c), blocks, ranks, proc);
  }
  std::printf("%s", t.to_string().c_str());

  Hypercube cube(3);
  MappingMetrics gray = evaluate_mapping(tig, res.mapping, cube);
  std::printf("Gray bisection : %s\n", gray.to_string().c_str());

  MappingMetrics rr = evaluate_mapping(tig, map_round_robin(tig, 8), cube);
  MappingMetrics rnd = evaluate_mapping(tig, map_random(tig, 8, 1), cube);
  std::printf("round-robin    : %s\n", rr.to_string().c_str());
  std::printf("random(seed=1) : %s\n", rnd.to_string().c_str());
}

void bm_map_mesh(benchmark::State& state) {
  std::size_t side = static_cast<std::size_t>(state.range(0));
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(side, side);
  unsigned dim = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    HypercubeMappingResult res = map_to_hypercube(tig, dim);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(bm_map_mesh)->Args({4, 3})->Args({8, 4})->Args({16, 6})->Args({32, 8});

void bm_evaluate_mapping(benchmark::State& state) {
  TaskInteractionGraph tig =
      TaskInteractionGraph::mesh(static_cast<std::size_t>(state.range(0)),
                                 static_cast<std::size_t>(state.range(0)));
  unsigned dim = static_cast<unsigned>(state.range(1));
  HypercubeMappingResult res = map_to_hypercube(tig, dim);
  Hypercube cube(dim);
  for (auto _ : state) {
    MappingMetrics m = evaluate_mapping(tig, res.mapping, cube);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(bm_evaluate_mapping)->Args({8, 4})->Args({16, 6});

void bm_gray_roundtrip(benchmark::State& state) {
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < 1024; ++i) acc ^= gray_decode(gray_encode(i));
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_gray_roundtrip);

}  // namespace

HYPART_BENCH_MAIN(report)
