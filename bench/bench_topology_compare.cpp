// Ablation A7 — beyond hypercubes: the bisect-then-number mapping on mesh
// and ring machines (the paper restricts Section IV to hypercubes; this
// quantifies what the richer topology buys).
#include "bench_common.hpp"

#include <memory>

#include "mapping/hypercube_map.hpp"
#include "mapping/other_topologies.hpp"
#include "perf/table.hpp"
#include "sim/exec_sim.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

struct Pieces {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
  TaskInteractionGraph tig;
  TimeFunction tf;
};

Pieces build(const LoopNest& nest, const IntVec& pi) {
  Pieces p;
  p.q = std::make_unique<ComputationStructure>(ComputationStructure::from_loop(nest));
  p.tf = TimeFunction{pi};
  p.ps = std::make_unique<ProjectedStructure>(*p.q, p.tf);
  p.grouping = Grouping::compute(*p.ps);
  p.partition = Partition::build(*p.q, p.grouping);
  p.tig = TaskInteractionGraph::from_partition(*p.q, p.partition, p.grouping);
  return p;
}

void topo_table(const char* title, Pieces& p, std::int64_t flops) {
  // 16 processors in each shape.
  Hypercube cube(4);
  Mesh2D mesh(4, 4);
  Ring ring(16);
  FullyConnected fc(16);
  MachineParams machine{1.0, 50.0, 5.0};
  SimOptions opts;
  opts.accounting = CommAccounting::PerStepBarrier;
  opts.charge_hops = true;
  opts.flops_per_iteration = flops;

  std::printf("\n%s (16 processors each)\n", title);
  TextTable t({"topology", "mapping", "comm cost (w*hops)", "avg hops", "sim T"});
  auto add = [&](const Topology& topo, const Mapping& m) {
    MappingMetrics met = evaluate_mapping(p.tig, m, topo);
    SimResult r = simulate_execution(*p.q, p.tf, p.partition, m, topo, machine, opts);
    t.row(topo.name(), m.method, met.total_comm_cost, met.avg_hops_weighted, r.time);
  };
  add(cube, map_to_hypercube(p.tig, 4).mapping);
  add(mesh, map_to_mesh(p.tig, mesh));
  add(ring, map_to_ring(p.tig, 16));
  {
    Mapping m = map_to_ring(p.tig, 16);  // any balanced mapping; distance is 1 anyway
    m.method = "contiguous";
    add(fc, m);
  }
  std::printf("%s", t.to_string().c_str());
}

void report() {
  bench::banner("Ablation A7: hypercube vs mesh vs ring vs fully-connected");
  {
    Pieces p = build(workloads::matrix_vector(64), {1, 1});
    topo_table("matvec M=64 (1-D block chain)", p, 2);
  }
  {
    Pieces p = build(workloads::matrix_multiplication(15), {1, 1, 1});
    topo_table("matmul 16^3 (2-D block lattice)", p, 2);
  }
  {
    Pieces p = build(workloads::sor2d(32, 32), {1, 1});
    topo_table("sor2d 32x32", p, 3);
  }
  std::printf(
      "\nReading: the 1-D chain maps perfectly onto every topology (neighbor\n"
      "traffic only), so richer networks buy nothing; the 2-D block lattice of\n"
      "matmul needs the mesh/hypercube to keep both lattice directions local,\n"
      "and the ring pays multi-hop costs along the second direction.\n");
}

void bm_mesh_mapping(benchmark::State& state) {
  Pieces p = build(workloads::matrix_multiplication(state.range(0)), {1, 1, 1});
  Mesh2D mesh(4, 4);
  for (auto _ : state) {
    Mapping m = map_to_mesh(p.tig, mesh);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(bm_mesh_mapping)->Arg(7)->Arg(11)->Arg(15);

void bm_ring_mapping(benchmark::State& state) {
  Pieces p = build(workloads::matrix_vector(state.range(0)), {1, 1});
  for (auto _ : state) {
    Mapping m = map_to_ring(p.tig, 16);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(bm_ring_mapping)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

HYPART_BENCH_MAIN(report)
