// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each binary prints its table/figure reproduction up front (so the output
// can be diffed against the paper) and then registers google-benchmark
// timings for the underlying algorithms.
//
// Observability: every bench shares one process-wide MetricsRegistry and
// obs::Profiler; report code routes pipeline/simulator runs through
// `obs_context()` so results gain per-phase breakdowns (iteration counts,
// message histograms, busiest-link series, stage spans).  IMPORTANT:
// obs_context() belongs in *report* code only — it runs once.  Inside a
// benchmark timing loop the registry's counters would scale with the
// iteration count google-benchmark happens to pick, destroying the
// determinism the bench JSON schema depends on.
//
// Machine-readable results ("hypart-bench-v1"): after the benchmarks run,
// each binary writes one JSON document
//
//   { "schema":  "hypart-bench-v1",
//     "bench":   <binary basename>,
//     "metrics": <deterministic MetricsSnapshot (counters/gauges/...)>,
//     "spans":   [ per-phase profile rows: name/cat/calls/wall_us/... ],
//     "timings": [ {name, repeats, min_us, median_us, p99_us, mean_us} ] }
//
// to $HYPART_BENCH_JSON_DIR/BENCH_<basename>.json (when set) and to the
// back-compatible $HYPART_BENCH_METRICS path (when set).  Everything under
// "metrics" is machine-independent and byte-identical across reruns —
// that is what tools/bench_report --check regresses against the committed
// baselines; "spans" and "timings" carry wall-clock measurements and are
// reported but never gated by default.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/json_writer.hpp"
#include "obs/obs.hpp"

namespace hypart::bench {

inline void banner(const std::string& title) {
  std::string rule(title.size() + 8, '=');
  std::printf("\n%s\n=== %s ===\n%s\n", rule.c_str(), title.c_str(), rule.c_str());
}

/// Process-wide metrics registry shared by a bench binary's report code.
inline obs::MetricsRegistry& metrics() {
  static obs::MetricsRegistry registry;
  return registry;
}

/// Process-wide span profiler shared by a bench binary's report code.
inline obs::Profiler& profiler() {
  static obs::Profiler prof;
  return prof;
}

/// ObsContext wired to the shared registry and profiler.  Report code only
/// (see the header comment): spans and counters from a timing loop would
/// scale with google-benchmark's chosen iteration count.
inline obs::ObsContext obs_context() { return obs::ObsContext{&profiler(), &metrics()}; }

/// Per-benchmark real-time samples captured by TimingReporter, keyed by the
/// full benchmark name; each entry is one repetition's per-iteration time
/// in microseconds.
inline std::map<std::string, std::vector<double>>& timings() {
  static std::map<std::string, std::vector<double>> t;
  return t;
}

/// ConsoleReporter that additionally records every per-repetition run into
/// `timings()`.  Console output is unchanged; aggregates/complexity rows
/// are not double-counted.
class TimingReporter : public ::benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      if (run.report_big_o || run.report_rms) continue;
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      timings()[run.benchmark_name()].push_back(run.real_accumulated_time / iters * 1e6);
    }
    ::benchmark::ConsoleReporter::ReportRuns(reports);
  }
};

/// Nearest-rank percentile of an unsorted sample set (q in [0,1]).
inline double percentile_us(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  double rank = std::ceil(std::clamp(q, 0.0, 1.0) * static_cast<double>(v.size()));
  std::size_t idx = rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return v[std::min(idx, v.size() - 1)];
}

/// Render the full hypart-bench-v1 document.
inline std::string bench_json(const std::string& bench_name) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "hypart-bench-v1");
  w.field("bench", bench_name);
  w.key("metrics").raw_value(metrics().snapshot().to_json());
  w.key("spans").raw_value(profiler().to_json());
  w.begin_array("timings");
  for (const auto& [name, samples] : timings()) {
    double mean = 0.0;
    for (double s : samples) mean += s;
    if (!samples.empty()) mean /= static_cast<double>(samples.size());
    w.begin_object();
    w.field("name", name);
    w.field("repeats", static_cast<std::int64_t>(samples.size()));
    w.field("min_us", samples.empty() ? 0.0 : *std::min_element(samples.begin(), samples.end()));
    w.field("median_us", percentile_us(samples, 0.5));
    w.field("p99_us", percentile_us(samples, 0.99));
    w.field("mean_us", mean);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

/// Write the hypart-bench-v1 document for this binary:
///   * $HYPART_BENCH_JSON_DIR/BENCH_<basename>.json  (result-set directory)
///   * $HYPART_BENCH_METRICS                         (single-file back-compat)
/// Unset env vars are skipped silently; I/O failure returns false.
inline bool write_bench_json(const std::string& argv0) {
  std::string name = argv0.substr(argv0.find_last_of('/') + 1);
  std::string doc = bench_json(name);
  auto write_to = [&](const std::string& path) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write results to '%s'\n", path.c_str());
      return false;
    }
    out << doc << "\n";
    return static_cast<bool>(out);
  };
  if (const char* dir = std::getenv("HYPART_BENCH_JSON_DIR"); dir != nullptr && *dir != '\0')
    if (!write_to(std::string(dir) + "/BENCH_" + name + ".json")) return false;
  if (const char* path = std::getenv("HYPART_BENCH_METRICS"); path != nullptr && *path != '\0')
    if (!write_to(path)) return false;
  return true;
}

}  // namespace hypart::bench

/// Standard main: print the reproduction report, run the benchmarks with
/// the timing-capturing reporter, then write the hypart-bench-v1 result
/// document (when $HYPART_BENCH_JSON_DIR or $HYPART_BENCH_METRICS is set).
#define HYPART_BENCH_MAIN(report_fn)                                    \
  int main(int argc, char** argv) {                                     \
    report_fn();                                                        \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::hypart::bench::TimingReporter reporter;                           \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                     \
    ::benchmark::Shutdown();                                            \
    if (!::hypart::bench::write_bench_json(argv[0])) return 1;          \
    return 0;                                                           \
  }
