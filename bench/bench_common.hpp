// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each binary prints its table/figure reproduction up front (so the output
// can be diffed against the paper) and then registers google-benchmark
// timings for the underlying algorithms.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace hypart::bench {

inline void banner(const std::string& title) {
  std::string rule(title.size() + 8, '=');
  std::printf("\n%s\n=== %s ===\n%s\n", rule.c_str(), title.c_str(), rule.c_str());
}

}  // namespace hypart::bench

/// Standard main: print the reproduction report, then run the benchmarks.
#define HYPART_BENCH_MAIN(report_fn)                                  \
  int main(int argc, char** argv) {                                   \
    report_fn();                                                      \
    ::benchmark::Initialize(&argc, argv);                             \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                            \
    ::benchmark::Shutdown();                                          \
    return 0;                                                         \
  }
