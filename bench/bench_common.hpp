// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each binary prints its table/figure reproduction up front (so the output
// can be diffed against the paper) and then registers google-benchmark
// timings for the underlying algorithms.
//
// Observability: every bench shares one process-wide MetricsRegistry; report
// code routes pipeline/simulator runs through `obs_context()` so the
// BENCH_*.json trajectories gain per-phase breakdowns (iteration counts,
// message histograms, busiest-link series) instead of single totals.  When
// the environment variable HYPART_BENCH_METRICS names a file, the registry
// snapshot is written there as `{"bench": <name>, "metrics": {...}}` after
// the benchmarks finish; the snapshot holds deterministic quantities only,
// so reruns produce byte-identical JSON.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/json_writer.hpp"
#include "obs/obs.hpp"

namespace hypart::bench {

inline void banner(const std::string& title) {
  std::string rule(title.size() + 8, '=');
  std::printf("\n%s\n=== %s ===\n%s\n", rule.c_str(), title.c_str(), rule.c_str());
}

/// Process-wide metrics registry shared by a bench binary's report code.
inline obs::MetricsRegistry& metrics() {
  static obs::MetricsRegistry registry;
  return registry;
}

/// ObsContext wired to the shared registry (no trace sink: benches measure
/// time themselves; wall-clock spans would perturb the timings they report).
inline obs::ObsContext obs_context() { return obs::ObsContext{nullptr, &metrics()}; }

/// Write the shared registry snapshot to $HYPART_BENCH_METRICS, if set.
/// Returns false on I/O failure (missing env var is not a failure).
inline bool write_metrics_json(const std::string& bench_name) {
  const char* path = std::getenv("HYPART_BENCH_METRICS");
  if (path == nullptr || *path == '\0') return true;
  JsonWriter w;
  w.begin_object();
  w.field("bench", bench_name);
  w.key("metrics").raw_value(metrics().snapshot().to_json());
  w.end_object();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write metrics to '%s'\n", path);
    return false;
  }
  out << w.str() << "\n";
  return static_cast<bool>(out);
}

}  // namespace hypart::bench

/// Standard main: print the reproduction report, run the benchmarks, then
/// dump the per-bench metrics snapshot (when HYPART_BENCH_METRICS is set).
#define HYPART_BENCH_MAIN(report_fn)                                  \
  int main(int argc, char** argv) {                                   \
    report_fn();                                                      \
    ::benchmark::Initialize(&argc, argv);                             \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                            \
    ::benchmark::Shutdown();                                          \
    if (!::hypart::bench::write_metrics_json(argv[0])) return 1;      \
    return 0;                                                         \
  }
