// Fig. 1 — the computational structure and hyperplanes of loop (L1).
//
// Reproduces: dependence set D = {(0,1),(1,1),(1,0)}, the 4x4 index set,
// and the hyperplane fronts i+j = 0..6 under Π = (1,1), plus an ASCII
// rendering of the structure.  Benchmarks time dependence analysis and
// schedule profiling.
#include "bench_common.hpp"

#include "graph/comp_structure.hpp"
#include "perf/table.hpp"
#include "schedule/hyperplane.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

void report() {
  bench::banner("Fig. 1: computational structure & hyperplanes of loop (L1)");

  LoopNest l1 = workloads::example_l1();
  std::printf("%s\n", l1.to_string().c_str());

  ComputationStructure q = ComputationStructure::from_loop(l1);
  std::printf("dependence vectors D = {");
  for (std::size_t k = 0; k < q.dependences().size(); ++k)
    std::printf("%s%s", k ? ", " : "", to_string(q.dependences()[k]).c_str());
  std::printf("}   (paper: {(0,1)t, (1,1)t, (1,0)t})\n");
  std::printf("index set |J^2| = %zu, dependence arcs = %zu (paper: 33)\n",
              q.vertices().size(), q.dependence_arc_count());

  TimeFunction tf{{1, 1}};
  ScheduleProfile p = profile_schedule(tf, q.vertices());
  TextTable t({"hyperplane i+j", "points (executed concurrently)"});
  for (const auto& [step, count] : p.points_per_step) t.row(step, count);
  std::printf("%s", t.to_string().c_str());
  std::printf("schedule span = %lld steps, max parallelism = %zu\n",
              static_cast<long long>(p.span()), p.max_parallelism);

  // ASCII rendering of the structure (j up, i right), hyperplane id per cell.
  std::printf("\nhyperplane index of each iteration (row = j desc, col = i):\n");
  for (std::int64_t j = 3; j >= 0; --j) {
    std::printf("  j=%lld |", static_cast<long long>(j));
    for (std::int64_t i = 0; i <= 3; ++i)
      std::printf(" %lld", static_cast<long long>(tf.step_of({i, j})));
    std::printf("\n");
  }
}

void bm_dependence_analysis(benchmark::State& state) {
  LoopNest l1 = workloads::example_l1(state.range(0));
  for (auto _ : state) {
    DependenceInfo info = analyze_dependences(l1);
    benchmark::DoNotOptimize(info);
  }
}
BENCHMARK(bm_dependence_analysis)->Arg(3)->Arg(15)->Arg(63);

void bm_structure_build(benchmark::State& state) {
  LoopNest l1 = workloads::example_l1(state.range(0));
  for (auto _ : state) {
    ComputationStructure q = ComputationStructure::from_loop(l1);
    benchmark::DoNotOptimize(q);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_structure_build)->Arg(7)->Arg(15)->Arg(31)->Arg(63)->Complexity();

void bm_schedule_profile(benchmark::State& state) {
  ComputationStructure q =
      ComputationStructure::from_loop(workloads::example_l1(state.range(0)));
  TimeFunction tf{{1, 1}};
  for (auto _ : state) {
    ScheduleProfile p = profile_schedule(tf, q.vertices());
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(bm_schedule_profile)->Arg(15)->Arg(63);

}  // namespace

HYPART_BENCH_MAIN(report)
