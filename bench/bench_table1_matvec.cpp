// Table I — maximum execution time T_exec(N) of matrix-vector multiplication,
// M = 1024, N in {1, 4, 16, 64, 256, 1024}.
//
// Reproduces the table twice:
//  1. the paper's closed form, verbatim (symbolic costs);
//  2. the full pipeline (dependence analysis -> Algorithm 1 -> Algorithm 2 ->
//     simulator) at M = 256 and M = 1024, PaperMaxChannel accounting, which
//     must agree with the closed form row by row.
// Also prints numeric times and speedups for a representative machine.
#include "bench_common.hpp"

#include <memory>

#include "core/pipeline.hpp"
#include "perf/perf_model.hpp"
#include "perf/table.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

void closed_form_table(std::int64_t m) {
  std::printf("\nClosed form, M = %lld (paper Table I uses M = 1024):\n",
              static_cast<long long>(m));
  TextTable t({"N", "T_exec(N)"});
  for (std::int64_t n : {1, 4, 16, 64, 256, 1024}) {
    if (n > m) break;
    t.row("N = " + std::to_string(n), perf::matvec_exec_time(m, n).to_string());
  }
  std::printf("%s", t.to_string().c_str());
}

void simulated_table(std::int64_t m, std::initializer_list<unsigned> dims) {
  std::printf("\nFull pipeline (Algorithm 1 + Algorithm 2 + simulator), M = %lld:\n",
              static_cast<long long>(m));
  MachineParams machine{1.0, 50.0, 5.0};
  TextTable t({"N", "simulated T_exec", "closed form", "match", "numeric time", "speedup"});
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1};
  cfg.machine = machine;
  cfg.obs = bench::obs_context();
  double seq = static_cast<double>(2 * m * m) * machine.t_calc;
  for (unsigned dim : dims) {
    cfg.cube_dim = dim;
    PipelineResult r = run_pipeline(workloads::matrix_vector(m), cfg);
    Cost expected = perf::matvec_exec_time(m, std::int64_t{1} << dim);
    bool match = (r.sim.total == expected);
    t.row("N = " + std::to_string(1 << dim), r.sim.total.to_string(), expected.to_string(),
          match ? "YES" : "NO", r.sim.time, seq / r.sim.time);
  }
  std::printf("%s", t.to_string().c_str());
}

void full_scale_table() {
  // The paper's exact scale: M = 1024, all six machine sizes.  Stages up to
  // the partition are shared; only mapping + simulation re-run per N.
  std::printf("\nFull pipeline at the paper's scale, M = 1024 (exact Table I check):\n");
  const std::int64_t m = 1024;
  LoopNest nest = workloads::matrix_vector(m);
  auto q = std::make_unique<ComputationStructure>(ComputationStructure::from_loop(nest));
  TimeFunction tf{{1, 1}};
  ProjectedStructure ps(*q, tf);
  Grouping g = Grouping::compute(ps);
  Partition part = Partition::build(*q, g);
  TaskInteractionGraph tig = TaskInteractionGraph::from_partition(*q, part, g);
  SimOptions opts;
  opts.flops_per_iteration = 2;
  opts.obs = bench::obs_context();

  TextTable t({"N", "simulated T_exec", "Table I row", "match"});
  for (unsigned dim : {0u, 2u, 4u, 6u, 8u, 10u}) {
    std::int64_t n = std::int64_t{1} << dim;
    HypercubeMappingResult hm = map_to_hypercube(tig, dim);
    SimResult r = simulate_execution(*q, tf, part, hm.mapping, Hypercube(dim),
                                     MachineParams{}, opts);
    Cost expected = perf::matvec_exec_time(m, n);
    t.row("N = " + std::to_string(n), r.total.to_string(), expected.to_string(),
          r.total == expected ? "YES" : "NO");
  }
  std::printf("%s", t.to_string().c_str());
}

void report() {
  bench::banner("Table I: T_exec(N) for matrix-vector multiplication");
  closed_form_table(1024);
  // The published table, as machine-checkable rows.
  std::printf("\npaper rows (M = 1024):\n");
  std::printf("  N=1    : 2097152 t_calc\n");
  std::printf("  N=4    : 786944 t_calc + 2046(t_comm+t_start)\n");
  std::printf("  N=16   : 245888 t_calc + 2046(t_comm+t_start)\n");
  std::printf("  N=64   : 64544 t_calc + 2046(t_comm+t_start)\n");
  std::printf("  N=256  : 16328 t_calc + 2046(t_comm+t_start)\n");
  std::printf("  N=1024 : 4094 t_calc + 2046(t_comm+t_start)\n");

  simulated_table(256, {0u, 1u, 2u, 3u, 4u, 5u});
  full_scale_table();
  std::printf("\nNote: the communication term is invariant in N — the paper's key\n"
              "observation; the compute term shrinks with N (shape reproduced).\n");
}

void bm_closed_form(benchmark::State& state) {
  for (auto _ : state) {
    Cost c = perf::matvec_exec_time(1024, state.range(0));
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(bm_closed_form)->Arg(4)->Arg(1024);

void bm_full_pipeline_matvec(benchmark::State& state) {
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1};
  cfg.cube_dim = 3;
  LoopNest nest = workloads::matrix_vector(state.range(0));
  for (auto _ : state) {
    PipelineResult r = run_pipeline(nest, cfg);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_full_pipeline_matvec)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Complexity()
    ->Unit(benchmark::kMillisecond);

void bm_simulation_only(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  auto q = std::make_unique<ComputationStructure>(
      ComputationStructure::from_loop(workloads::matrix_vector(m)));
  TimeFunction tf{{1, 1}};
  ProjectedStructure ps(*q, tf);
  Grouping g = Grouping::compute(ps);
  Partition p = Partition::build(*q, g);
  TaskInteractionGraph tig = TaskInteractionGraph::from_partition(*q, p, g);
  HypercubeMappingResult hm = map_to_hypercube(tig, 3);
  Hypercube cube(3);
  SimOptions opts;
  opts.flops_per_iteration = 2;
  for (auto _ : state) {
    SimResult r = simulate_execution(*q, tf, p, hm.mapping, cube, MachineParams{}, opts);
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(m);
}
BENCHMARK(bm_simulation_only)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Complexity()
    ->Unit(benchmark::kMillisecond);

}  // namespace

HYPART_BENCH_MAIN(report)
