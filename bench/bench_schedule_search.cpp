// Ablation A5 — hyperplane time-function search: candidate Π vectors,
// their schedule spans, and the cost of the exhaustive small-integer search.
#include "bench_common.hpp"

#include "graph/comp_structure.hpp"
#include "perf/table.hpp"
#include "schedule/hyperplane.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

void candidates_table(const LoopNest& nest, std::vector<IntVec> candidates) {
  ComputationStructure q = ComputationStructure::from_loop(nest);
  std::printf("\n%s (deps:", nest.name().c_str());
  for (const IntVec& d : q.dependences()) std::printf(" %s", to_string(d).c_str());
  std::printf(")\n");

  TextTable t({"Pi", "valid", "span (steps)", "max parallelism"});
  for (const IntVec& pi : candidates) {
    TimeFunction tf{pi};
    bool valid = is_valid_time_function(tf, q.dependences());
    if (!valid) {
      t.row(to_string(pi), "no", "-", "-");
      continue;
    }
    ScheduleProfile p = profile_schedule(tf, q.vertices());
    t.row(to_string(pi), "yes", std::to_string(p.span()), std::to_string(p.max_parallelism));
  }
  auto best = search_time_function(q);
  std::printf("%s", t.to_string().c_str());
  if (best)
    std::printf("search result: Pi* = %s, span = %lld\n", best->to_string().c_str(),
                static_cast<long long>(profile_schedule(*best, q.vertices()).span()));
}

void report() {
  bench::banner("Ablation A5: hyperplane time-function search");
  candidates_table(workloads::example_l1(7),
                   {{1, 1}, {1, 2}, {2, 1}, {1, 0}, {0, 1}, {2, 3}, {1, -1}});
  candidates_table(workloads::matrix_multiplication(7),
                   {{1, 1, 1}, {1, 1, 2}, {2, 1, 1}, {1, 0, 1}, {1, 2, 1}});
  candidates_table(workloads::sor2d(16, 16), {{1, 1}, {1, 2}, {2, 1}, {3, 1}});
}

void bm_search_2d(benchmark::State& state) {
  ComputationStructure q =
      ComputationStructure::from_loop(workloads::example_l1(state.range(0)));
  for (auto _ : state) {
    auto tf = search_time_function(q);
    benchmark::DoNotOptimize(tf);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_search_2d)->Arg(7)->Arg(15)->Arg(31)->Complexity()->Unit(benchmark::kMillisecond);

void bm_search_3d(benchmark::State& state) {
  ComputationStructure q =
      ComputationStructure::from_loop(workloads::matrix_multiplication(state.range(0)));
  for (auto _ : state) {
    auto tf = search_time_function(q);
    benchmark::DoNotOptimize(tf);
  }
}
BENCHMARK(bm_search_3d)->Arg(3)->Arg(5)->Arg(7)->Unit(benchmark::kMillisecond);

void bm_validity_check(benchmark::State& state) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication(3));
  TimeFunction tf{{1, 1, 1}};
  for (auto _ : state) {
    bool ok = is_valid_time_function(tf, q.dependences());
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(bm_validity_check);

}  // namespace

HYPART_BENCH_MAIN(report)
