// Ablation A1 — mapping quality: Algorithm 2's Gray-code bisection vs.
// topology-oblivious placements (random, round-robin, contiguous) and a
// greedy-swap refinement, measured as weight*hops communication cost and
// simulated execution time on the hypercube.
#include "bench_common.hpp"

#include <memory>

#include "mapping/baseline_map.hpp"
#include "mapping/hypercube_map.hpp"
#include "perf/table.hpp"
#include "sim/exec_sim.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;

struct Pieces {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
  TaskInteractionGraph tig;
  TimeFunction tf;
};

Pieces build(const LoopNest& nest, const IntVec& pi) {
  Pieces p;
  p.q = std::make_unique<ComputationStructure>(ComputationStructure::from_loop(nest));
  p.tf = TimeFunction{pi};
  p.ps = std::make_unique<ProjectedStructure>(*p.q, p.tf);
  p.grouping = Grouping::compute(*p.ps);
  p.partition = Partition::build(*p.q, p.grouping);
  p.tig = TaskInteractionGraph::from_partition(*p.q, p.partition, p.grouping);
  return p;
}

void compare(const char* title, Pieces& p, unsigned dim, std::int64_t flops) {
  Hypercube cube(dim);
  const std::size_t nprocs = std::size_t{1} << dim;
  std::printf("\n%s (blocks=%zu, procs=%zu)\n", title, p.tig.vertex_count(), nprocs);

  SimOptions sim_opts;
  sim_opts.accounting = CommAccounting::PerStepBarrier;
  sim_opts.charge_hops = true;
  sim_opts.flops_per_iteration = flops;
  MachineParams machine{1.0, 50.0, 5.0};

  TextTable t({"mapping", "comm cost (w*hops)", "cut volume", "avg hops", "sim T", "speedup"});
  auto add = [&](const Mapping& m) {
    MappingMetrics met = evaluate_mapping(p.tig, m, cube);
    SimResult r = simulate_execution(*p.q, p.tf, p.partition, m, cube, machine, sim_opts);
    double seq = static_cast<double>(p.q->vertices().size()) * static_cast<double>(flops) *
                 machine.t_calc;
    t.row(m.method, met.total_comm_cost, met.cut_comm_volume, met.avg_hops_weighted, r.time,
          seq / r.time);
  };
  add(map_to_hypercube(p.tig, dim).mapping);
  {
    HypercubeMapOptions weighted;
    weighted.weighted = true;
    Mapping m = map_to_hypercube(p.tig, dim, weighted).mapping;
    m.method = "gray-bisection(weighted)";
    add(m);
  }
  add(map_contiguous(p.tig, nprocs));
  add(map_round_robin(p.tig, nprocs));
  add(map_random(p.tig, nprocs, 12345));
  add(refine_greedy_swap(p.tig, map_random(p.tig, nprocs, 12345), cube));
  std::printf("%s", t.to_string().c_str());
}

void report() {
  bench::banner("Ablation A1: Gray-code bisection vs baseline mappings");
  {
    Pieces p = build(workloads::matrix_vector(64), {1, 1});
    compare("matvec M=64 on 3-cube", p, 3, 2);
  }
  {
    Pieces p = build(workloads::matrix_multiplication(15), {1, 1, 1});
    compare("matmul 16^3 on 4-cube", p, 4, 2);
  }
  {
    Pieces p = build(workloads::sor2d(48, 48), {1, 1});
    compare("sor2d 48x48 on 4-cube", p, 4, 4);
  }
}

void bm_gray_mapping(benchmark::State& state) {
  Pieces p = build(workloads::matrix_vector(state.range(0)), {1, 1});
  for (auto _ : state) {
    HypercubeMappingResult r = map_to_hypercube(p.tig, 4);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(bm_gray_mapping)->Arg(64)->Arg(128)->Arg(256);

void bm_greedy_refinement(benchmark::State& state) {
  Pieces p = build(workloads::matrix_vector(state.range(0)), {1, 1});
  Hypercube cube(3);
  Mapping start = map_random(p.tig, 8, 1);
  for (auto _ : state) {
    Mapping m = refine_greedy_swap(p.tig, start, cube, 2);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(bm_greedy_refinement)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

HYPART_BENCH_MAIN(report)
